package serve

// The engine seam: a Node serves whatever can ingest batches, answer
// sampling queries and cut snapshots. Two shapes exist — a
// shard.Coordinator (the fleet-member default: sharded ingestion,
// merged node-local queries) and one bare sample.Sampler (the shape
// the single-stream kinds take on the network: random-order, matrix
// rows, strict-turnstile F0, multipass — whose guarantees ride one
// arrival order or one replayable buffer and gain nothing from a
// worker fan-out). Restore sniffs the checkpoint's kind byte and
// rebuilds whichever shape wrote it, so crash recovery is uniform.

import (
	"fmt"
	"strings"
	"sync"

	"repro/sample"
	"repro/sample/shard"
	"repro/sample/snap"
)

// engine is what a Node serves. ProcessBatch reports hostile input as
// an error (the ingest handler answers 400); every other method
// mirrors the coordinator surface the handlers were built against.
// SampleKLenShared's bool reports whether the answer reused a shared
// query snapshot (the coordinator's version-stamped cache) — engines
// without one always report false.
type engine interface {
	ProcessBatch(items []int64) error
	SampleKLenShared(k int) ([]sample.Outcome, int, int64, bool)
	Snapshot() ([]byte, error)
	StreamLen() int64
	BitsUsed() int64
	Describe() string
	Shards() int
	Trials() int
	Queries() int
	Close()
}

// coordEngine serves a shard.Coordinator. Concurrency contracts are
// the coordinator's own (single-producer ingestion — the node's
// ingestMu provides it — and an any-goroutine read path).
type coordEngine struct{ c *shard.Coordinator }

func (e coordEngine) ProcessBatch(items []int64) error { e.c.ProcessBatch(items); return nil }
func (e coordEngine) SampleKLenShared(k int) ([]sample.Outcome, int, int64, bool) {
	return e.c.SampleKLenShared(k)
}
func (e coordEngine) Snapshot() ([]byte, error) { return e.c.Snapshot() }
func (e coordEngine) StreamLen() int64          { return e.c.StreamLen() }
func (e coordEngine) BitsUsed() int64           { return e.c.BitsUsed() }
func (e coordEngine) Describe() string          { return e.c.Describe() }
func (e coordEngine) Shards() int               { return e.c.Shards() }
func (e coordEngine) Trials() int               { return e.c.Trials() }
func (e coordEngine) Queries() int              { return e.c.Queries() }
func (e coordEngine) Close()                    { e.c.Close() }

// samplerEngine serves one bare sample.Sampler under a single mutex:
// samplers are not goroutine-safe, and even queries mutate (they
// consume randomness). That cost is fine — the single-stream kinds
// this shape exists for are cheap per update, and their checkpoint is
// snap.Snapshot of the one sampler, which the aggregator already
// merges as a single-state pool (explodeStates).
type samplerEngine struct {
	mu       sync.Mutex
	s        sample.Sampler
	describe string
	queries  int
}

func newSamplerEngine(s sample.Sampler) *samplerEngine {
	e := &samplerEngine{s: s, describe: fmt.Sprintf("%T", s), queries: 1}
	if st, ok := s.(sample.Stateful); ok {
		if state, err := st.SnapState(); err == nil {
			e.describe = describeSpec(state.Spec)
			if state.Spec.Queries > 0 {
				e.queries = state.Spec.Queries
			}
		}
	}
	return e
}

// describeSpec renders a bare sampler's constructor spec in the same
// human-readable style shard.Coordinator.Describe uses.
func describeSpec(spec sample.Spec) string {
	s := strings.ToLower(spec.Kind.String())
	if spec.P != 0 {
		s += fmt.Sprintf(" p=%g", spec.P)
	}
	if spec.Tau != 0 {
		s += fmt.Sprintf(" τ=%g", spec.Tau)
	}
	if spec.N != 0 {
		s += fmt.Sprintf(" n=%d", spec.N)
	}
	if spec.M != 0 {
		s += fmt.Sprintf(" m=%d", spec.M)
	}
	if spec.W != 0 {
		s += fmt.Sprintf(" w=%d", spec.W)
	}
	if spec.FreqCap != 0 {
		s += fmt.Sprintf(" cap=%d", spec.FreqCap)
	}
	if spec.Delta != 0 {
		s += fmt.Sprintf(" δ=%g", spec.Delta)
	}
	return s
}

// ProcessBatch feeds the batch, converting the packed adapters'
// hostile-input panics — a negative matrix item, a multipass item
// outside the universe, a strict-turnstile deletion below zero — into
// an error the ingest handler answers 400 with, so a bad client
// cannot crash the node. Items before the offending one are already
// ingested when the batch is rejected (the adapters validate each
// update before mutating, so the sampler itself stays consistent).
func (e *samplerEngine) ProcessBatch(items []int64) (err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: batch rejected: %v", r)
		}
	}()
	e.s.ProcessBatch(items)
	return nil
}

func (e *samplerEngine) SampleKLenShared(k int) ([]sample.Outcome, int, int64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	outs, n := e.s.SampleK(k)
	return outs, n, e.s.StreamLen(), false
}

func (e *samplerEngine) Snapshot() ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return snap.Snapshot(e.s)
}

func (e *samplerEngine) StreamLen() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.s.StreamLen()
}

func (e *samplerEngine) BitsUsed() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.s.BitsUsed()
}

func (e *samplerEngine) Describe() string { return e.describe }
func (e *samplerEngine) Shards() int      { return 1 }
func (e *samplerEngine) Trials() int      { return 0 }
func (e *samplerEngine) Queries() int     { return e.queries }
func (e *samplerEngine) Close()           {} // no goroutines to stop

// restoreEngine rebuilds whichever engine shape wrote a checkpoint:
// coordinator bytes (kind 0xC0) restore through sample/shard, bare
// sampler bytes through snap.Restore.
func restoreEngine(data []byte) (engine, error) {
	if shard.IsCoordinatorSnapshot(data) {
		c, err := shard.RestoreCoordinator(data)
		if err != nil {
			return nil, err
		}
		return coordEngine{c}, nil
	}
	s, err := snap.Restore(data)
	if err != nil {
		return nil, err
	}
	return newSamplerEngine(s), nil
}
