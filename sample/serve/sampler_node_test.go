package serve

// HTTP coverage for bare sampler nodes (NewSamplerNode): the dormant
// single-stream kinds served without a coordinator — ingest/sample/
// snapshot round trips, hostile packed items answering 400 without
// killing the node, and the aggregator's 422 refusal for random-order
// fleets.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/sample"
	"repro/sample/snap"
)

// newSamplerTestNode serves a bare sampler over HTTP with cleanup.
func newSamplerTestNode(t *testing.T, s sample.Sampler) (*Node, *Client) {
	t.Helper()
	n := NewSamplerNode(s, NodeConfig{})
	srv := httptest.NewServer(n.Handler())
	t.Cleanup(func() {
		srv.Close()
		n.Close()
	})
	return n, NewClient(srv.URL)
}

func TestSamplerNodeIngestSampleSnapshot(t *testing.T) {
	_, cl := newSamplerTestNode(t, sample.NewTurnstileF0(32, 0.1, 9).Stream())

	// Inserts plus one deletion, packed: item 7 is inserted twice and
	// deleted once, item 3 three times.
	items := []int64{7, 3, 7, 3, 3, sample.PackTurnstileItem(sample.Update{Item: 7, Delta: -1})}
	ack, err := cl.Ingest(items)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if ack.Accepted != len(items) || ack.StreamLen != int64(len(items)) {
		t.Fatalf("ack = %+v, want %d/%d", ack, len(items), len(items))
	}

	resp, err := cl.Sample()
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if resp.Count != 1 || resp.StreamLen != int64(len(items)) {
		t.Fatalf("sample = %+v", resp)
	}
	out := resp.Outcomes[0]
	wantFreq := map[int64]int64{3: 3, 7: 1}
	if f, ok := wantFreq[out.Item]; !ok || out.Freq != f {
		t.Fatalf("served outcome %+v outside the exact support/frequency table %v", out, wantFreq)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.StreamLen != int64(len(items)) || st.Shards != 1 {
		t.Fatalf("stats = %+v, want streamLen %d over 1 shard", st, len(items))
	}
	if !strings.Contains(st.Sampler, "turnstilef0") {
		t.Fatalf("stats sampler %q does not name the kind", st.Sampler)
	}

	// GET /snapshot must hand back bytes snap.Restore accepts, carrying
	// the full ingested state.
	data, name, err := cl.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if name == "" {
		t.Fatal("snapshot answered with an empty content-addressed name")
	}
	restored, err := snap.Restore(data)
	if err != nil {
		t.Fatalf("Restore of served snapshot: %v", err)
	}
	if restored.StreamLen() != int64(len(items)) {
		t.Fatalf("restored stream length %d, want %d", restored.StreamLen(), len(items))
	}
}

// TestSamplerNodeHostileItem400: a batch carrying an item the kind
// rejects (a negative packed matrix item, a deletion below zero)
// answers 400 and leaves the node serving.
func TestSamplerNodeHostileItem400(t *testing.T) {
	cases := []struct {
		name    string
		s       sample.Sampler
		good    []int64
		hostile []int64
	}{
		{
			name:    "matrix-negative-item",
			s:       sample.NewMatrixRowsL2(4, 64, 0.25, 3).Stream(),
			good:    []int64{5, 9, 2},
			hostile: []int64{-1},
		},
		{
			name:    "multipass-deletion-below-zero",
			s:       sample.NewMultipassLp(2, 0.5, 0.25, 4).Stream(16),
			good:    []int64{5, 9, 2},
			hostile: []int64{sample.PackTurnstileItem(sample.Update{Item: 11, Delta: -1})},
		},
		{
			name:    "multipass-outside-universe",
			s:       sample.NewMultipassLp(2, 0.5, 0.25, 5).Stream(16),
			good:    []int64{5, 9, 2},
			hostile: []int64{16},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, cl := newSamplerTestNode(t, tc.s)
			if _, err := cl.Ingest(tc.good); err != nil {
				t.Fatalf("good batch: %v", err)
			}
			_, err := cl.Ingest(tc.hostile)
			if err == nil {
				t.Fatal("hostile batch accepted")
			}
			if !strings.Contains(err.Error(), "400") {
				t.Fatalf("hostile batch answered %v, want a 400", err)
			}
			// The node survives and keeps answering.
			resp, err := cl.Sample()
			if err != nil {
				t.Fatalf("Sample after hostile batch: %v", err)
			}
			if resp.StreamLen != int64(len(tc.good)) {
				t.Fatalf("stream length %d after rejected batch, want the good %d",
					resp.StreamLen, len(tc.good))
			}
		})
	}
}

// TestAggregatorRandOrderRefusal: a fleet of random-order sampler
// nodes answers 422 through the aggregator — the snapshots are
// healthy, they just don't compose (the uniform-order guarantee is
// local to one stream's arrival clock) — and the body carries
// snap.ErrRandOrderMergeUnsupported's sentinel text.
func TestAggregatorRandOrderRefusal(t *testing.T) {
	var urls []string
	for seed := uint64(1); seed <= 2; seed++ {
		n := NewSamplerNode(sample.NewRandomOrderL2(64, 8, seed), NodeConfig{})
		srv := httptest.NewServer(n.Handler())
		t.Cleanup(func() {
			srv.Close()
			n.Close()
		})
		if _, err := NewClient(srv.URL).Ingest([]int64{3, 3, 5, 9}); err != nil {
			t.Fatal(err)
		}
		urls = append(urls, srv.URL)
	}
	agg := NewAggregator(5, urls...)
	srv := httptest.NewServer(agg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/sample")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnprocessableEntity {
		resp.Body.Close()
		t.Fatalf("random-order fleet: status %d, want 422", resp.StatusCode)
	}
	var e errorBody
	if err := decodeErr(resp, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "random-order snapshots do not merge") {
		t.Fatalf("refusal message %q does not carry the sentinel text", e.Error)
	}
}
