package serve_test

import "os"

// exampleTempDir gives the Restore example a throwaway store location
// without importing testing into example scope.
func exampleTempDir() string {
	dir, err := os.MkdirTemp("", "serve-example-")
	if err != nil {
		panic(err)
	}
	return dir
}
