package serve

// Tests for the binary ingest fast path (application/x-tp-items) and
// the request-coalescing batcher: codec acceptance, hostile-body
// rejection before the shared buffer, the body-limit interaction, the
// Close-drain ack contract, and the HTTP-level fuzz target the CI
// fuzz-smoke job runs.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/sample/shard"
)

func TestIngestBinaryHTTP(t *testing.T) {
	_, _, cl := newTestNode(t, NodeConfig{})
	ack, err := cl.IngestBinary([]int64{4, 4, 4, 4, 9})
	if err != nil {
		t.Fatalf("IngestBinary: %v", err)
	}
	if ack.Accepted != 5 || ack.StreamLen != 5 {
		t.Fatalf("ack = %+v, want 5/5", ack)
	}
	resp, err := cl.Sample()
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if resp.Count != 1 || resp.StreamLen != 5 {
		t.Fatalf("sample = %+v", resp)
	}
	if it := resp.Outcomes[0].Item; it != 4 && it != 9 {
		t.Fatalf("sampled item %d outside the ingested support", it)
	}
}

// Hostile binary bodies answer 400 and leak nothing into the engine —
// on the direct path and, crucially, on the coalesced path, where a
// partial frame must never contribute items to a shared flush.
func TestIngestBinaryMalformed(t *testing.T) {
	valid := wire.EncodeItems([]int64{1, 2, 3, 4, 5})
	hostile := map[string][]byte{
		"empty":           {},
		"snapshot magic":  bytes.Replace(valid, []byte("TPIB"), []byte("TPSN"), 1),
		"truncated items": valid[:len(valid)-2],
		"trailing byte":   append(bytes.Clone(valid), 7),
		"huge count":      append(bytes.Clone(valid[:5]), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01),
	}
	for _, cfg := range []NodeConfig{
		{},
		{CoalesceItems: 1 << 16, CoalesceMaxWait: time.Millisecond},
	} {
		name := "direct"
		if cfg.CoalesceItems > 0 {
			name = "coalesced"
		}
		t.Run(name, func(t *testing.T) {
			_, srv, cl := newTestNode(t, cfg)
			for tn, body := range hostile {
				resp, err := http.Post(srv.URL+"/ingest", ContentTypeBinary, bytes.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusBadRequest {
					t.Fatalf("%s: status %d, want 400", tn, resp.StatusCode)
				}
			}
			// A good batch after the hostile ones: the stream must hold
			// exactly its items — a leaked partial frame would inflate it.
			ack, err := cl.IngestBinary([]int64{8, 9})
			if err != nil {
				t.Fatal(err)
			}
			if ack.Accepted != 2 || ack.StreamLen != 2 {
				t.Fatalf("hostile frames leaked into the engine: ack %+v, want 2/2", ack)
			}
		})
	}
}

// The body limit fires before the shared buffer is touched: an
// oversized binary request 413s without contributing anything to a
// coalesced flush (the regression test for the body-limit/coalescing
// interaction).
func TestIngestBinaryOversizedCoalesced(t *testing.T) {
	_, srv, cl := newTestNode(t, NodeConfig{
		MaxBodyBytes:    64,
		CoalesceItems:   1 << 16,
		CoalesceMaxWait: time.Millisecond,
	})
	big := make([]int64, 1024)
	for i := range big {
		big[i] = int64(i)
	}
	resp, err := http.Post(srv.URL+"/ingest", ContentTypeBinary, bytes.NewReader(wire.EncodeItems(big)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	ack, err := cl.IngestBinary([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 3 || ack.StreamLen != 3 {
		t.Fatalf("oversized request leaked into the shared buffer: ack %+v, want 3/3", ack)
	}
}

// Concurrent writers through the batcher: every request is
// individually acknowledged with its own count, nothing is lost or
// duplicated, and the flush metrics record the coalescing.
func TestCoalescedIngestConcurrent(t *testing.T) {
	n, _, cl := newTestNode(t, NodeConfig{CoalesceItems: 64, CoalesceMaxWait: time.Millisecond})
	const writers, reqs, per = 16, 8, 10
	errs := make(chan error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			items := make([]int64, per)
			for r := 0; r < reqs; r++ {
				for i := range items {
					items[i] = int64(w*1000 + r)
				}
				// Half the writers speak binary, half JSON: the batcher
				// must coalesce across codecs.
				var ack IngestResponse
				var err error
				if w%2 == 0 {
					ack, err = cl.IngestBinary(items)
				} else {
					ack, err = cl.Ingest(items)
				}
				if err != nil {
					errs <- err
					return
				}
				if ack.Accepted != per {
					errs <- fmt.Errorf("writer %d req %d: accepted %d, want %d", w, r, ack.Accepted, per)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got, want := n.StreamLen(), int64(writers*reqs*per); got != want {
		t.Fatalf("stream mass %d after concurrent coalesced ingest, want %d", got, want)
	}
	text, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"tp_coalesce_flushes_total", "tp_coalesce_batch_items", "tp_coalesce_queue_wait_seconds"} {
		if !strings.Contains(text, series) {
			t.Fatalf("exposition is missing %s", series)
		}
	}
}

// Close drains the pending coalescing buffer: a writer already
// accepted into it gets its 200 and its items are in the final
// checkpoint — zero acknowledged items lost — while later writers are
// refused unacknowledged.
func TestCoalescedCloseDrain(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := shard.NewL1(0.1, 5, shard.Config{Shards: 2})
	// Thresholds no request will hit: the writer parks in the buffer
	// until Close flushes it.
	n := NewNode(c, NodeConfig{Store: st, CoalesceItems: 1 << 20, CoalesceMaxWait: time.Hour})
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()
	cl := NewClient(srv.URL)

	type result struct {
		ack IngestResponse
		err error
	}
	done := make(chan result, 1)
	go func() {
		ack, err := cl.IngestBinary([]int64{1, 2, 3})
		done <- result{ack, err}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n.batch.mu.Lock()
		parked := n.batch.pending != nil
		n.batch.mu.Unlock()
		if parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writer never reached the shared buffer")
		}
		time.Sleep(time.Millisecond)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("buffered writer must be flushed and acknowledged by Close, got %v", r.err)
	}
	if r.ack.Accepted != 3 || r.ack.StreamLen != 3 {
		t.Fatalf("drained ack %+v, want 3/3", r.ack)
	}
	if _, err := cl.IngestBinary([]int64{9}); err == nil {
		t.Fatal("ingest after Close was acknowledged")
	}

	restored, skipped, err := Restore(st, NodeConfig{})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer restored.Close()
	if len(skipped) != 0 {
		t.Fatalf("Restore skipped %v", skipped)
	}
	if got := restored.StreamLen(); got != 3 {
		t.Fatalf("final checkpoint holds mass %d, want the drained 3", got)
	}
}

// FuzzBinaryIngest drives hostile bytes through the full HTTP handler
// of a coalescing node: every body must answer 200 (and then agree
// with the codec's own count), 400, or 413 — never panic, never hang,
// never a partial ingest.
func FuzzBinaryIngest(f *testing.F) {
	f.Add(wire.EncodeItems(nil))
	f.Add(wire.EncodeItems([]int64{1, -1, 1 << 40}))
	f.Add(wire.EncodeItems(make([]int64, 300)))
	f.Add([]byte("TPIB"))
	f.Add([]byte("TPSN not a frame"))
	f.Add(wire.EncodeItems([]int64{5})[:4])

	const maxBody = 1 << 16
	c := shard.NewL1(0.2, 9, shard.Config{Shards: 2})
	n := NewNode(c, NodeConfig{MaxBodyBytes: maxBody, CoalesceItems: 256, CoalesceMaxWait: time.Millisecond})
	h := n.Handler()
	f.Cleanup(func() { n.Close() })

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body))
		req.Header.Set("Content-Type", ContentTypeBinary)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		count, cErr := wire.ItemsFrameCount(body)
		switch rec.Code {
		case http.StatusOK:
			if cErr != nil {
				t.Fatalf("handler accepted a frame the codec rejects: %v", cErr)
			}
			var ack IngestResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
				t.Fatalf("unparseable ack: %v", err)
			}
			if ack.Accepted != count {
				t.Fatalf("accepted %d items of a %d-item frame", ack.Accepted, count)
			}
		case http.StatusBadRequest:
			if cErr == nil && len(body) <= maxBody {
				t.Fatal("handler rejected a frame the codec accepts")
			}
		case http.StatusRequestEntityTooLarge:
			if len(body) <= maxBody {
				t.Fatalf("413 for a %d-byte body under the %d limit", len(body), maxBody)
			}
		default:
			t.Fatalf("status %d for a binary ingest body", rec.Code)
		}
	})
}
