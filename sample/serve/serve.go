// Package serve is the network serving layer of the truly perfect
// sampling library: a zero-dependency net/http node/aggregator pair
// that turns the in-process exactness story — sharded ingestion
// (sample/shard) and cross-process snapshot merging (sample/snap) —
// into a cluster that ingests over HTTP, checkpoints itself, survives
// crashes, and answers *global* sampling queries whose law is exactly
// the law one sampler would have had on the union of every node's
// stream.
//
// # Topology
//
// A Node wraps one shard.Coordinator: POST /ingest feeds it (JSON or
// NDJSON batches), GET /sample answers node-local merged queries, GET
// /snapshot cuts a fleet checkpoint (Coordinator.Snapshot) — served
// conditionally: the content-addressed state name is the ETag, a
// matching If-None-Match or ?since= answers 304, and a ?since= naming
// a recent state the node still holds gets a wire-v2 delta instead of
// the full bytes. A ticker checkpoints into a pluggable SnapshotStore
// on the same economy (full snapshots on the FullEvery cadence, deltas
// between; Restore folds the chain back). An Aggregator holds no
// sampler state — only a per-node snapshot cache keyed by those state
// names: per query it revalidates every node (304s, folded deltas, or
// full refetches; counters on GET /debug/vars), explodes each
// coordinator checkpoint into per-shard sampler states
// (shard.SamplerStates), and runs snap.MergeStates over the union —
// the m_j/m mixture of Theorem 3.1's composition argument, now
// spanning machines. See DESIGN.md §5 for the full architecture, the
// snapshot-cache contract, and the staleness contract.
//
// # Why the aggregator's answer is exact
//
// Because every per-shard pool is truly perfect (ε = γ = 0, §1 of
// arXiv:2108.12017), the mixture that draws a pool with probability
// m_j/m and consumes one of its instances has exactly the
// single-machine per-trial law G(f_i)/(ζm) — the same telescoping
// argument sample/shard makes for goroutines and sample/snap makes for
// processes, applied here to every (node, shard) pool in the fleet at
// once. The aggregator pays zero distributional cost for distribution;
// its only approximation is temporal: an answer reflects each node's
// state at snapshot-fetch time, not at response-write time.
//
// The usual caveats ride along unchanged from snap.Merge: nodes must
// use distinct coordinator seeds (pool independence is part of the
// mixture argument), and for nonlinear measures the fleet must
// partition items across nodes — hash-route at the front door exactly
// as the coordinator hash-routes across shards. L1 is exact under any
// split. Sliding-window samplers refuse to merge
// (snap.ErrWindowMergeUnsupported): window state is indexed by each
// node's local clock, and no cross-machine mixture is exact without a
// shared clock contract.
//
// # Checkpoints and crash recovery
//
// A node with a SnapshotStore checkpoints on a fixed interval and —
// because Coordinator.Snapshot drains the workers first — every
// checkpoint reflects every update acknowledged before it was cut.
// Close drains and writes one final checkpoint, so a graceful
// shutdown loses nothing: an update the node accepted (200 on
// /ingest) is either in the final checkpoint or was ingested after
// restore. After a crash, Restore rebuilds the node from the latest
// stored checkpoint and continues bit-for-bit (the snapshot carries
// the raw RNG states); at most the updates accepted after the last
// checkpoint are lost — the interval is the durability knob.
//
// Handlers are safe for concurrent use: ingestion is serialized
// node-side (the coordinator's single-producer contract), queries run
// on the coordinator's any-goroutine read path, and a closed node
// answers 503 rather than touching a closed coordinator.
package serve

import (
	"encoding/json"
	"net/http"

	"repro/internal/obs"
)

// Wire DTOs shared by the node handlers, the aggregator handlers and
// the Client. All responses are JSON except GET /snapshot, which
// returns the raw snapshot bytes (application/octet-stream) with the
// content-addressed snap.Name in the X-Snapshot-Name header.

// The ingest content-types POST /ingest negotiates by the request's
// Content-Type header. JSON is the default for any unrecognized value
// — the forgiving path; the binary frame is the fast path
// (wire.EncodeItems / Client.IngestBinary), decoded with zero
// intermediate allocations straight into the engine's batch.
const (
	// ContentTypeJSON is a single {"items":[…]} object (IngestRequest).
	ContentTypeJSON = "application/json"
	// ContentTypeNDJSON is one JSON value per line — an array of items
	// or a bare item — so a producer can stream a batch without framing
	// the whole request in memory.
	ContentTypeNDJSON = "application/x-ndjson"
	// ContentTypeBinary is the length-prefixed binary item frame
	// (internal/wire: "TPIB" magic, version, count, zig-zag varints).
	// Bodies that fail to parse as exactly one frame answer 400.
	ContentTypeBinary = "application/x-tp-items"
)

// IngestRequest is the body of POST /ingest with
// Content-Type application/json. With application/x-ndjson the body is
// instead one JSON value per line — an array of items (a batch) or a
// bare item — which lets a producer stream batches without framing the
// whole request in memory.
type IngestRequest struct {
	Items []int64 `json:"items"`
}

// IngestResponse acknowledges an ingest batch. An acknowledged update
// is durable to the next checkpoint (see the package comment's
// staleness contract), and StreamLen is the node's routed total after
// the batch — the m_j the merge will weight this node by.
type IngestResponse struct {
	Accepted  int   `json:"accepted"`
	StreamLen int64 `json:"streamLen"`
}

// OutcomeJSON is one sampler answer on the wire (sample.Outcome).
type OutcomeJSON struct {
	Item   int64 `json:"item"`
	Freq   int64 `json:"freq"`
	Bottom bool  `json:"bottom,omitempty"`
}

// SampleResponse answers GET /sample and /samplek on both node and
// aggregator. Count is the number of draws that succeeded (a FAIL is a
// legal sampler answer, probability ≤ δ per provisioned group);
// StreamLen is the stream mass the answer is exact with respect to.
// Nodes and Pools are set by the aggregator: how many nodes
// contributed snapshots and how many per-shard pools the mixture ran
// over.
type SampleResponse struct {
	Outcomes  []OutcomeJSON `json:"outcomes"`
	Count     int           `json:"count"`
	StreamLen int64         `json:"streamLen"`
	Nodes     int           `json:"nodes,omitempty"`
	Pools     int           `json:"pools,omitempty"`
}

// NodeStats answers GET /stats on a node.
type NodeStats struct {
	// Sampler is the coordinator's constructor in human-readable form
	// (shard.Coordinator.Describe).
	Sampler   string `json:"sampler"`
	Shards    int    `json:"shards"`
	Trials    int    `json:"trials"`
	Queries   int    `json:"queries"`
	StreamLen int64  `json:"streamLen"`
	// Bits is the live memory footprint. Measuring it requires draining
	// the workers — it touches the ingest hot path — so it is reported
	// only when the stats request asks with ?drain=1 and omitted
	// otherwise; monitoring pollers get lock-cheap counters by default.
	Bits int64 `json:"bits,omitempty"`
	// Checkpoints counts successful checkpoint writes (ticker, explicit
	// and final); DeltaCheckpoints counts how many of them were v2
	// deltas (NodeConfig.FullEvery); LastCheckpoint is the stored name
	// of the newest one.
	Checkpoints      int64  `json:"checkpoints"`
	DeltaCheckpoints int64  `json:"deltaCheckpoints,omitempty"`
	LastCheckpoint   string `json:"lastCheckpoint,omitempty"`
	// LastCheckpointError reports the most recent checkpoint failure;
	// empty once a later checkpoint succeeds.
	LastCheckpointError string `json:"lastCheckpointError,omitempty"`
}

// NodeStatus is one node's row in an aggregator's stats: its URL and
// either its stats or the error that made it unreachable.
type NodeStatus struct {
	URL   string     `json:"url"`
	Stats *NodeStats `json:"stats,omitempty"`
	Error string     `json:"error,omitempty"`
}

// AggregatorStats answers GET /stats on an aggregator. StreamLen sums
// the reachable nodes' masses — the m the next merged query will
// normalize by (up to staleness).
type AggregatorStats struct {
	Nodes     []NodeStatus       `json:"nodes"`
	StreamLen int64              `json:"streamLen"`
	Counters  AggregatorCounters `json:"counters"`
}

// AggregatorCounters is a point-in-time copy of an aggregator's
// snapshot-cache and transfer counters (Aggregator.Counters; also
// served as expvar JSON on GET /debug/vars). Per queried node and
// query, exactly one of CacheHits / DeltaFetches / FullFetches
// advances: a 304 revalidation, a v2 delta folded onto the cached
// state, or a full v1 fetch. BytesFetched counts response-body bytes —
// the cluster bandwidth the cache and the delta path exist to save.
// Per successful query, exactly one of PlanHits / PlanRebuilds
// advances: the merge plan was reused (every node's state name
// unchanged) or rebuilt (DESIGN.md §9).
type AggregatorCounters struct {
	CacheHits    int64 `json:"cacheHits"`
	DeltaFetches int64 `json:"deltaFetches"`
	FullFetches  int64 `json:"fullFetches"`
	BytesFetched int64 `json:"bytesFetched"`
	PlanHits     int64 `json:"planHits"`
	PlanRebuilds int64 `json:"planRebuilds"`
}

// errorBody is the JSON error envelope every non-2xx response carries.
// RequestID is the tracing ID the failing request rode in on (also on
// the X-Request-ID response header), so a client error is greppable in
// the server's structured logs; Node, set by the aggregator, is the
// base URL of the node whose fetch failed — without it a multi-node
// 502 is unattributable from the caller's side.
type errorBody struct {
	Error     string `json:"error"`
	Node      string `json:"node,omitempty"`
	RequestID string `json:"requestId,omitempty"`
}

// writeJSON writes v with the given status. Encoding errors at this
// point can only be connection failures; they are ignored because the
// response line has already been committed.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the JSON error envelope, stamped with the
// request's tracing ID (r may be nil for contexts with no request).
func writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	writeErrorNode(w, r, status, msg, "")
}

// writeErrorNode is writeError plus node attribution (the aggregator's
// fan-out failures).
func writeErrorNode(w http.ResponseWriter, r *http.Request, status int, msg, node string) {
	body := errorBody{Error: msg, Node: node}
	if r != nil {
		body.RequestID = obs.RequestIDFromContext(r.Context())
	}
	writeJSON(w, status, body)
}
