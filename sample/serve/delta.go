package serve

// Flavor dispatch for wire-format-v2 deltas. A node's snapshots are
// coordinator checkpoints (kind 0xC0, codec in sample/shard) but the
// serving layer also meets bare sampler snapshots (a peer serving
// sample/snap bytes without a coordinator); these helpers pick the
// right codec by sniffing the kind byte, the same dispatch the
// aggregator already does for full snapshots via IsCoordinatorSnapshot.

import (
	"strings"

	"repro/sample/shard"
	"repro/sample/snap"
)

// encodeAnyDelta computes the v2 delta turning full snapshot base into
// full snapshot cur, whichever codec owns the kind.
func encodeAnyDelta(base, cur []byte) ([]byte, error) {
	if shard.IsCoordinatorSnapshot(cur) {
		return shard.EncodeCoordinatorDelta(base, cur)
	}
	return snap.EncodeDelta(base, cur)
}

// applyAnyDelta folds one v2 delta onto its base full snapshot,
// returning the successor's full v1 bytes.
func applyAnyDelta(base, delta []byte) ([]byte, error) {
	if shard.IsCoordinatorSnapshot(base) {
		return shard.ApplyCoordinatorDelta(base, delta)
	}
	return snap.ApplyDelta(base, delta)
}

// isDeltaName reports whether a stored checkpoint name was written for
// v2 delta bytes. The content-addressed part of a stored name embeds
// snap.Name's kind label, which carries a "-delta" suffix for v2 — so
// the store can tell chain links from anchors without reading a byte.
// (Kind labels are lowercase constructor names; none contains "delta",
// so the marker cannot collide with a hash or a label.)
func isDeltaName(name string) bool {
	return strings.Contains(contentOf(name), "-delta-")
}
