package shard

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/measure"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/stream"
)

// --- SampleK: merged multi-sample law ----------------------------------

// Each of SampleK's draws must carry the exact merged (single-machine)
// law, marginally per group position.
func TestSampleKMarginalMergedLaw(t *testing.T) {
	freq := map[int64]int64{1: 200, 2: 100, 3: 50, 4: 25, 5: 12}
	gen := stream.NewGenerator(rng.New(201))
	items := gen.FromFrequencies(freq)
	est := measure.Huber{Tau: 3}
	target := stats.GDistribution(freq, est.G)

	const k = 3
	hists := make([]stats.Histogram, k)
	for q := range hists {
		hists[q] = stats.Histogram{}
	}
	const reps = 3000
	for rep := 0; rep < reps; rep++ {
		c := New(est, int64(len(items)), 0.05, uint64(rep)+1,
			Config{Shards: 4, BatchSize: 64, Queries: k})
		c.ProcessBatch(items)
		outs, n := c.SampleK(k)
		c.Close()
		if n != len(outs) {
			t.Fatalf("bookkeeping off: n=%d len=%d", n, len(outs))
		}
		for q, out := range outs {
			hists[q].Add(out.Item)
		}
	}
	for q, h := range hists {
		chi, dof, p := stats.ChiSquare(h, target, 5)
		t.Logf("group %d: N=%d chi2=%.2f dof=%d p=%.4f", q, h.Total(), chi, dof, p)
		if p < 1e-3 {
			t.Fatalf("group %d merged law deviates: chi2=%.2f dof=%d p=%.5f",
				q, chi, dof, p)
		}
	}
}

// SampleK clamps to the provisioned Queries count; an empty stream
// answers k ⊥ successes; Sample answers from group 0 unchanged.
func TestSampleKClampAndEmpty(t *testing.T) {
	c := NewL1(0.1, 3, Config{Shards: 2, Queries: 2})
	defer c.Close()
	outs, n := c.SampleK(5)
	if n != 2 || len(outs) != 2 || !outs[0].Bottom || !outs[1].Bottom {
		t.Fatalf("empty stream: outs=%v n=%d, want two ⊥", outs, n)
	}
	for i := int64(0); i < 50; i++ {
		c.Process(i % 3)
	}
	outs, n = c.SampleK(2)
	if n != 2 {
		t.Fatalf("L1 SampleK(2) succeeded %d times, want 2", n)
	}
	for _, o := range outs {
		if o.Bottom || o.Item < 0 || o.Item > 2 {
			t.Fatalf("draw %+v outside stream support", o)
		}
	}
	if out, ok := c.Sample(); !ok || out.Bottom {
		t.Fatalf("Sample after SampleK: %+v ok=%v", out, ok)
	}
}

// --- satellite: queries concurrent with ingestion ----------------------

// Queries must be callable from goroutines other than the producer,
// concurrently with ingestion, without serializing behind it. Run under
// -race this doubles as the data-race proof of the drain-then-snapshot
// read path; the law itself is pinned by the claims tests.
func TestConcurrentQueriesDuringIngestion(t *testing.T) {
	gen := stream.NewGenerator(rng.New(202))
	items := gen.Zipf(256, 1<<16, 1.1)
	c := NewL1(0.05, 11, Config{Shards: 4, BatchSize: 512, Queries: 8})
	defer c.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var draws, fails int64
	var mu sync.Mutex
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				outs, n := c.SampleK(8)
				mu.Lock()
				draws += int64(n)
				fails += int64(8 - n)
				mu.Unlock()
				for _, o := range outs {
					if !o.Bottom && (o.Item < 0 || o.Item >= 256) {
						t.Errorf("concurrent draw outside universe: %+v", o)
						return
					}
				}
			}
		}()
	}
	stream.ForEachChunk(items, 2048, c.ProcessBatch)
	c.Drain()
	close(stop)
	wg.Wait()
	if got := c.StreamLen(); got != int64(len(items)) {
		t.Fatalf("StreamLen = %d, want %d", got, len(items))
	}
	// L1 never FAILs on a non-empty stream; the only all-⊥/short answers
	// could come from the pre-first-update window.
	t.Logf("concurrent draws: %d ok, %d short", draws, fails)
	if draws == 0 {
		t.Fatal("no concurrent draws completed")
	}
	if outs, n := c.SampleK(8); n != 8 || len(outs) != 8 {
		t.Fatalf("post-ingest SampleK: n=%d", n)
	}
}

// --- satellite: shared query snapshot under concurrency ----------------

// Concurrent queries with mixed k share the cached drained snapshot
// while ingestion and checkpoint cuts keep invalidating it. Run under
// -race this is the data-race proof of the append-only trial-table
// sharing (extendTrials' capacity-capped views); the law is pinned by
// the claims tests. The quiesced tail pins the cache contract: with
// the stream unchanged, a repeat query never rebuilds.
func TestSharedQuerySnapshotConcurrency(t *testing.T) {
	gen := stream.NewGenerator(rng.New(203))
	items := gen.Zipf(128, 1<<14, 1.1)
	c := NewL1(0.05, 17, Config{Shards: 4, BatchSize: 256, Queries: 8})
	defer c.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		k := 2 + 3*g // 2, 5, 8: mixed widths force trial-table extension
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				outs, n, total, _ := c.SampleKLenShared(k)
				if n != len(outs) {
					t.Errorf("k=%d: bookkeeping off: n=%d len=%d", k, n, len(outs))
					return
				}
				for _, o := range outs {
					if total > 0 && (o.Bottom || o.Item < 0 || o.Item >= 128) {
						t.Errorf("k=%d: draw %+v outside support at mass %d", k, o, total)
						return
					}
				}
			}
		}()
	}
	// Snapshot cuts invalidate the shared query snapshot from a second
	// direction (exportState drops it to keep restored continuation
	// bit-for-bit).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Snapshot(); err != nil {
				t.Errorf("Snapshot: %v", err)
				return
			}
		}
	}()
	stream.ForEachChunk(items, 1024, c.ProcessBatch)
	close(stop)
	wg.Wait()

	if got := c.StreamLen(); got != int64(len(items)) {
		t.Fatalf("StreamLen = %d, want %d", got, len(items))
	}
	// Quiesced: the first query may rebuild; a wider repeat must share
	// (extending the same snapshot, never rebuilding).
	c.SampleKLenShared(4)
	b0, _ := c.QuerySnapshotCounters()
	_, _, _, shared := c.SampleKLenShared(8)
	b1, s1 := c.QuerySnapshotCounters()
	if !shared || b1 != b0 {
		t.Fatalf("quiesced repeat query rebuilt: shared=%v builds %d→%d", shared, b0, b1)
	}
	if s1 == 0 {
		t.Fatal("no query shared the snapshot")
	}
}

// --- satellite: drawShard 64-bit draw ----------------------------------

// drawShard must honor mixture weights for totals beyond 2³¹ — the
// int-truncation regime that corrupted the m_j/m mixture on 32-bit
// platforms. Synthetic masses: no need to route 2³¹ updates.
func TestDrawShardBeyond32BitBoundary(t *testing.T) {
	src := rng.New(7)
	const big = int64(1) << 33
	lens := []int64{big / 2, big / 4, big / 4}
	counts := make([]int64, len(lens))
	const draws = 200000
	for i := 0; i < draws; i++ {
		j := drawShard(src, lens, big)
		if j < 0 || j >= len(lens) {
			t.Fatalf("drawShard out of range: %d", j)
		}
		counts[j]++
	}
	for j, l := range lens {
		want := float64(l) / float64(big)
		got := float64(counts[j]) / draws
		if diff := got - want; diff > 0.01 || diff < -0.01 {
			t.Fatalf("shard %d drawn %.4f, want %.4f (±0.01)", j, got, want)
		}
	}
	// Exact boundary totals must not panic or skew to shard 0.
	for _, total := range []int64{1<<31 - 1, 1 << 31, 1<<31 + 1} {
		lens := []int64{1, total - 1}
		seen1 := false
		for i := 0; i < 64; i++ {
			if drawShard(src, lens, total) == 1 {
				seen1 = true
			}
		}
		if !seen1 {
			t.Fatalf("total=%d: shard 1 (mass %d/%d) never drawn", total,
				total-1, total)
		}
	}
}

// --- satellite: use-after-Close guard ----------------------------------

func TestUseAfterClosePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s after Close did not panic", name)
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "used after Close") {
				t.Fatalf("%s after Close panicked with %v, want a clear message", name, r)
			}
		}()
		fn()
	}
	c := NewL1(0.1, 5, Config{Shards: 2, Queries: 2})
	c.Process(1)
	c.Close()
	c.Close() // idempotent, must not panic
	mustPanic("Process", func() { c.Process(2) })
	mustPanic("ProcessBatch", func() { c.ProcessBatch([]int64{1, 2}) })
	mustPanic("Sample", func() { c.Sample() })
	mustPanic("SampleK", func() { c.SampleK(2) })
	mustPanic("Drain", func() { c.Drain() })
	mustPanic("BitsUsed", func() { c.BitsUsed() })
}

// --- satellite: edge cases ---------------------------------------------

// Nil and empty batches are no-ops at any point in the stream.
func TestProcessBatchNilAndEmpty(t *testing.T) {
	c := NewL1(0.1, 9, Config{Shards: 3, Queries: 2})
	defer c.Close()
	c.ProcessBatch(nil)
	c.ProcessBatch([]int64{})
	if got := c.StreamLen(); got != 0 {
		t.Fatalf("StreamLen after empty batches = %d, want 0", got)
	}
	if out, ok := c.Sample(); !ok || !out.Bottom {
		t.Fatalf("empty stream after nil batch: %+v ok=%v", out, ok)
	}
	c.ProcessBatch([]int64{1, 2, 3})
	c.ProcessBatch(nil)
	if got := c.StreamLen(); got != 3 {
		t.Fatalf("StreamLen = %d, want 3", got)
	}
	if out, ok := c.Sample(); !ok || out.Bottom {
		t.Fatalf("sample after nil batch mid-stream: %+v ok=%v", out, ok)
	}
}

// Repeated Sample after an explicit Drain keeps answering (drains are
// idempotent; queries are non-destructive).
func TestRepeatedSampleAfterDrain(t *testing.T) {
	c := NewL1(0.05, 13, Config{Shards: 2, BatchSize: 8})
	defer c.Close()
	for i := int64(0); i < 64; i++ {
		c.Process(i % 4)
	}
	c.Drain()
	for rep := 0; rep < 20; rep++ {
		out, ok := c.Sample()
		if !ok || out.Bottom {
			t.Fatalf("repeat %d: %+v ok=%v", rep, out, ok)
		}
		if out.Item < 0 || out.Item > 3 {
			t.Fatalf("repeat %d: item %d outside support", rep, out.Item)
		}
	}
}

// Property test: under adversarial shard-draw sequences the mixture
// consumes at most T instances of any one shard per group — the
// structural invariant that keeps full per-shard provisioning
// exhaustion-free (and the trial indexing in bounds). Exercised both
// directly on drawShard with skewed mass vectors and end-to-end on a
// maximally skewed stream (every update in one shard).
func TestPerShardConsumptionNeverExceedsProvisioning(t *testing.T) {
	src := rng.New(31)
	const T = 64
	for _, lens := range [][]int64{
		{1 << 40, 1, 1},       // nearly all mass on shard 0
		{1, 1 << 40},          // nearly all mass on shard 1
		{5, 0, 5, 0, 5},       // zero-mass shards interleaved
		{1, 1, 1, 1},          // uniform
		{1 << 35, 1 << 35, 2}, // two heavy, one light
		{0, 0, 7},             // single live shard at the end
	} {
		var total int64
		for _, l := range lens {
			total += l
		}
		used := make([]int, len(lens))
		for trial := 0; trial < T; trial++ {
			j := drawShard(src, lens, total)
			if lens[j] == 0 {
				t.Fatalf("lens=%v: zero-mass shard %d drawn", lens, j)
			}
			used[j]++
		}
		for j, u := range used {
			if u > T {
				t.Fatalf("lens=%v: shard %d consumed %d > T=%d", lens, j, u, T)
			}
		}
	}
	// End-to-end: a single-item stream hash-routes every update to one
	// shard; repeated full-budget queries (L0.5 FAILs often here) must
	// never index past that shard's provisioned pool.
	items := make([]int64, 500)
	for rep := 0; rep < 50; rep++ {
		c := NewLp(0.5, 8, int64(len(items)), 0.45, uint64(rep)+1,
			Config{Shards: 4, BatchSize: 32, Queries: 2})
		c.ProcessBatch(items)
		for q := 0; q < 3; q++ {
			c.SampleK(2) // would panic on out-of-range if the invariant broke
		}
		c.Close()
	}
}
