// Package shard provides partitioned parallel ingestion for the truly
// perfect sampling framework: a Coordinator fans an insertion-only
// stream out across P worker goroutines, each owning an independent
// pool of framework instances, and merges the per-shard pools at query
// time so that the merged output law is *exactly* the law a single
// sampler would have produced on the undivided stream.
//
// # Why exact merging is possible
//
// This is the paper's composition property at work (§1 of
// arXiv:2108.12017): because each framework instance is truly perfect —
// zero relative error, zero additive error — samples from different
// machines can be combined without compounding approximation error.
// Concretely, an instance that reservoir-sampled a uniform position of
// shard j's local stream (length m_j) accepts item i at query time with
// probability exactly
//
//	P[accept ∧ item = i] = G(f_i⁽ʲ⁾) / (ζ·m_j),
//
// where f⁽ʲ⁾ is shard j's local frequency vector (Theorem 3.1's
// telescoping argument, applied to the local stream). A single-machine
// instance over the whole stream (length m = Σ m_j) would accept i with
// probability G(f_i)/(ζ·m). The coordinator therefore simulates one
// single-machine instance per query trial by *mixing shards by local
// stream mass*: draw shard j with probability m_j/m, then consume one
// unused instance of shard j. Under hash routing every occurrence of an
// item lands in one shard, so f_i⁽ʲ⁾ = f_i for the owning shard and the
// trial accepts i with probability
//
//	Σ_j (m_j/m) · G(f_i·1[i owned by j]) / (ζ·m_j) = G(f_i)/(ζ·m),
//
// exactly the single-machine per-trial law. Trials are i.i.d. (distinct
// instances, independent shard draws), so "first accepting trial out of
// T" has exactly the single-machine pool law, and FAIL probability
// (1 − F_G/(ζm))^T — identical to the single-machine pool's whenever ζ
// is a data-independent constant, and no worse for Lp with p > 1, where
// the per-shard Misra–Gries bounds are computed on shorter local
// streams and therefore yield a ζ at least as tight as the
// single-machine sketch's. No (1±ε), no 1/poly(n) — the merged sampler
// is itself truly perfect.
//
// Two details make this watertight rather than approximately right:
//
//   - ζ must be a single global bound shared by every shard (the
//     coordinator computes it at query time — for Lp with p > 1, from
//     the per-shard Misra–Gries bounds), otherwise trials from
//     different shards would be normalized inconsistently and the
//     mixture law would be distorted.
//   - every shard provisions the full trial budget T. If shards held
//     only T/P instances, the multinomial shard-draw sequence could
//     exhaust a shard mid-query, and any exhaustion handling (abort,
//     skip, redraw) conditions the output law on the draw sequence and
//     introduces exactly the kind of additive bias the paper rules out.
//     Full provisioning costs P× the single-machine pool memory in
//     total — but per shard (per machine, in a real deployment) it is
//     the same memory a single-machine sampler would need, and update
//     time is unaffected because the framework's update cost is
//     independent of pool size.
//
// # Routing
//
// RouteHash partitions the universe by a keyed hash of the item, which
// is what makes the merged law exact for every measure G. RouteRoundRobin
// partitions by arrival position instead, splitting an item's
// occurrences across shards; the merged law is then exactly
// Σ_j G(f_i⁽ʲ⁾) / Σ_i Σ_j G(f_i⁽ʲ⁾), which coincides with the global
// G-law precisely when G is linear — i.e. round-robin is exact for L1
// and biased for nonlinear measures. It is provided for load-balancing
// experiments and for the L1 case, where it removes hash skew entirely.
//
// # Concurrency contract
//
// Ingestion is single-producer: Process and ProcessBatch must be called
// from one goroutine (the parallelism lives inside). Queries are not so
// restricted: Sample, SampleK, Drain and BitsUsed may be called from
// any goroutine, concurrently with the producer and with each other.
// A query takes the coordinator mutex, drains in-flight batches, and
// snapshots everything it needs (per-shard stream masses, one rejection
// trial per pool instance it may consume) — then releases the mutex,
// draws a per-request split of the coordinator's mixture RNG, and runs
// the merge on the snapshot. Query traffic therefore no longer
// serializes behind ingestion: the producer contends only for the
// bounded drain-and-snapshot window, not for the merge itself, and the
// worker goroutines keep applying batches throughout. Every query still
// answers with respect to every update processed before it drained.
//
// The drained snapshot is additionally *shared* across queries: the
// coordinator versions its routed stream (every Process/ProcessBatch
// bumps the version) and caches the last snapshot it built, so queries
// arriving while the version is unchanged skip both the drain barrier
// and the O(k·P·T) trial materialization and pay only their own mixture
// draws. Each request still gets an independent split of the mixture
// RNG, so every answer carries the exact merged marginal law; queries
// against an unchanged coordinator reuse the same frozen trial coins
// and are therefore correlated with each other — the same contract the
// cross-machine merge layer (sample/snap, sample/serve) has always
// documented for repeated queries against unchanged nodes. Any ingest
// invalidates the cache, and k mutually independent samples within one
// request come from SampleK's disjoint groups, exactly as before.
//
// Ingesting into or querying a coordinator after Close (Process,
// ProcessBatch, Sample, SampleK, Drain, BitsUsed) panics with a clear
// message; the read-only accessors (StreamLen, Shards, Trials,
// Queries) stay usable and Close itself is idempotent.
package shard

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/misragries"
	"repro/internal/rng"
	"repro/sample"
)

// Route selects how the coordinator partitions the stream.
type Route int

const (
	// RouteHash routes by keyed item hash: each item's occurrences all
	// land in one shard, and the merged law is exact for every measure.
	RouteHash Route = iota
	// RouteRoundRobin routes by arrival position. Exact for linear G
	// (L1); for nonlinear measures the merged law is the per-shard
	// mixture Σ_j G(f⁽ʲ⁾) — see the package comment.
	RouteRoundRobin
)

// Config tunes the coordinator. The zero value picks hash routing,
// one shard per available CPU (capped at 8), a 2048-item batch, and a
// single query group. Values are clamped into the snapshot-portable
// ranges noted per field, so every coordinator a constructor accepts
// can round-trip through Snapshot/RestoreCoordinator.
type Config struct {
	// Shards is the worker count P. Defaults to min(GOMAXPROCS, 8);
	// clamped to ≤ 4096.
	Shards int
	// Route is the partitioning policy. Defaults to RouteHash.
	Route Route
	// BatchSize is the per-shard routing buffer: updates are handed to
	// workers in slices of this length. Defaults to 2048; clamped to
	// ≤ 2²⁰.
	BatchSize int
	// QueueDepth is the per-worker channel capacity in batches.
	// Defaults to 8; clamped to ≤ 2¹².
	QueueDepth int
	// Queries provisions k disjoint query groups in every shard pool so
	// SampleK(k) answers k mutually independent merged samples per
	// query. Memory scales by the factor k (each group is a full trial
	// budget T per shard); update time is unchanged. Defaults to 1;
	// clamped to < 2²⁰.
	Queries int
}

// Config ranges shared with the snapshot decoder
// (validateCoordinatorHead): what a constructor accepts, a restore
// accepts.
const (
	maxShards     = 1 << 12
	maxBatchSize  = 1 << 20
	maxQueueDepth = 1 << 12
	maxQueries    = 1<<20 - 1 // strictly inside the decoder's 20-bit field mask
)

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.Shards > maxShards {
		c.Shards = maxShards
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 2048
	}
	if c.BatchSize > maxBatchSize {
		c.BatchSize = maxBatchSize
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.QueueDepth > maxQueueDepth {
		c.QueueDepth = maxQueueDepth
	}
	if c.Queries <= 0 {
		c.Queries = 1
	}
	if c.Queries > maxQueries {
		c.Queries = maxQueries
	}
	return c
}

// Coordinator fans a stream across per-shard sampler pools and answers
// merged queries with the exact single-machine law. It implements
// sample.Sampler.
//
// mu guards all coordinator state (routing buffers, counters, worker
// channels, pool reads) — see the package comment's concurrency
// contract. The worker goroutines themselves never take mu: they are
// synchronized through the drain acknowledgement channel, after which
// they are provably idle until the next (mu-guarded) send.
type Coordinator struct {
	mu      sync.Mutex
	cfg     Config
	workers []*worker
	bufs    [][]int64
	// free recycles routing buffers: a worker done applying a batch
	// hands the slice back (non-blocking, see worker.loop) and the next
	// flush reuses it, so steady-state routing allocates nothing. Every
	// buffer in it has capacity cfg.BatchSize — the flush trigger
	// compares len against cap.
	free    chan []int64
	src     *rng.PCG // shard draws at query time
	hashKey uint64
	rr      int   // round-robin cursor
	total   int64 // updates routed so far
	trials  int   // per-group per-shard pool size T = the full trial budget
	queries int   // disjoint query groups per shard pool
	zeta    func(*Coordinator) float64
	spec    coordSpec
	closed  bool

	// Query snapshot sharing: version counts routed-ingest calls, qsnap
	// caches the last drained snapshot stamped with the version it was
	// built at, and the counters feed QuerySnapshotCounters. A checkpoint
	// (exportState) drops the cache so a restored coordinator — which
	// starts without it — continues queries bit-for-bit with the
	// original.
	version     uint64
	qsnap       *querySnapshot
	qsnapBuilds int64
	qsnapShared int64
}

// coordSpec records the constructor call that built the coordinator,
// so Snapshot can encode it and RestoreCoordinator can re-run it.
type coordSpec struct {
	kind    uint8 // coordMeasure (New) or coordLp (NewLp)
	measure string
	tau     float64
	p       float64
	n       int64
	m       int64
	delta   float64
	seed    uint64
	known   bool // false for custom measures: Snapshot errors
}

const (
	coordMeasure uint8 = 1
	coordLp      uint8 = 2
)

type msg struct {
	items []int64
	ack   chan<- struct{}
}

type worker struct {
	pool *core.GSampler
	mg   *misragries.Sketch // nil unless the Lp (p>1) normalizer is needed
	in   chan msg
	done chan struct{}
	free chan<- []int64 // recycled routing buffers, back to the coordinator
}

func (w *worker) loop() {
	for m := range w.in {
		if len(m.items) > 0 {
			if w.mg != nil {
				for _, it := range m.items {
					w.mg.Process(it)
				}
			}
			w.pool.ProcessBatch(m.items)
			// The pool copied what it needed; recycle the buffer unless
			// the free list is full (then the GC takes it).
			select {
			case w.free <- m.items[:0]:
			default:
			}
		}
		if m.ack != nil {
			m.ack <- struct{}{}
		}
	}
	close(w.done)
}

// New returns a sharded truly perfect sampler for measure g over a
// stream of planned length ≤ m with failure probability ≤ delta —
// the parallel counterpart of sample.NewMEstimator. Every shard
// provisions the full Theorem-3.1 pool for (g, m, delta), so the merged
// FAIL probability matches the single-machine sampler's.
func New(g sample.Measure, m int64, delta float64, seed uint64, cfg Config) *Coordinator {
	trials := core.InstancesForMeasure(g, m, delta)
	name, tau, specErr := sample.MeasureSpec(g)
	c := build(cfg, seed, trials, func(c *Coordinator, j int, poolSeed uint64) (*core.GSampler, *misragries.Sketch) {
		return core.NewGSamplerK(g, trials, c.queries, poolSeed,
			func() float64 { return c.zeta(c) }), nil
	}, func(c *Coordinator) float64 {
		return g.Zeta(c.total)
	})
	c.spec = coordSpec{kind: coordMeasure, measure: name, tau: tau, m: m,
		delta: delta, seed: seed, known: specErr == nil}
	return c
}

// NewL1 returns the sharded truly perfect L1 sampler. With
// RouteRoundRobin it is still exact (L1's G is linear) and perfectly
// load-balanced regardless of item skew.
func NewL1(delta float64, seed uint64, cfg Config) *Coordinator {
	return New(measure.Lp{P: 1}, 1, delta, seed, cfg)
}

// NewLp returns the sharded truly perfect Lp sampler (p > 0) over
// universe [0, n) for a stream of planned length ≤ m — the parallel
// counterpart of sample.NewLp. For p > 1 each shard additionally runs a
// deterministic Misra–Gries sketch; at query time the coordinator
// combines the per-shard bounds into one global ζ (max over shards for
// hash routing, sum for round-robin) so every trial is normalized
// identically.
func NewLp(p float64, n, m int64, delta float64, seed uint64, cfg Config) *Coordinator {
	if p <= 0 {
		panic("shard: Lp sampler needs p > 0")
	}
	if delta <= 0 || delta >= 1 {
		panic("shard: delta must be in (0,1)")
	}
	trials := core.LpPoolSize(p, n, m, delta)
	spec := coordSpec{kind: coordLp, p: p, n: n, m: m, delta: delta,
		seed: seed, known: true}
	if p <= 1 {
		c := build(cfg, seed, trials, func(c *Coordinator, j int, poolSeed uint64) (*core.GSampler, *misragries.Sketch) {
			return core.NewGSamplerK(measure.Lp{P: p}, trials, c.queries, poolSeed,
				func() float64 { return 1 }), nil
		}, func(*Coordinator) float64 { return 1 })
		c.spec = spec
		return c
	}
	k := core.LpMGWidth(p, n)
	zeta := func(c *Coordinator) float64 {
		var z float64
		for _, w := range c.workers {
			zb := float64(w.mg.MaxUpperBound())
			if c.cfg.Route == RouteRoundRobin {
				z += zb // ‖f‖∞ ≤ Σ_j ‖f⁽ʲ⁾‖∞
			} else if zb > z {
				z = zb // ‖f‖∞ = max_j ‖f⁽ʲ⁾‖∞ under hash routing
			}
		}
		if z < 1 {
			z = 1
		}
		return p * math.Pow(z, p-1)
	}
	c := build(cfg, seed, trials, func(c *Coordinator, j int, poolSeed uint64) (*core.GSampler, *misragries.Sketch) {
		return core.NewGSamplerK(measure.Lp{P: p}, trials, c.queries, poolSeed,
			func() float64 { return c.zeta(c) }), misragries.New(k)
	}, zeta)
	c.spec = spec
	return c
}

func build(cfg Config, seed uint64, trials int,
	mk func(c *Coordinator, j int, poolSeed uint64) (*core.GSampler, *misragries.Sketch),
	zeta func(*Coordinator) float64) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		src:     rng.New(seed ^ 0xc001d00dcafef00d),
		hashKey: mix64(seed + 0x5bd1e9955bd1e995),
		trials:  trials,
		queries: cfg.Queries,
		zeta:    zeta,
	}
	c.workers = make([]*worker, cfg.Shards)
	c.bufs = make([][]int64, cfg.Shards)
	// Two spare buffers per shard keep the flush path allocation-free
	// even when every worker has one batch in flight and one queued.
	c.free = make(chan []int64, 2*cfg.Shards)
	for j := range c.workers {
		pool, mg := mk(c, j, mix64(seed+uint64(j)*0x9e3779b97f4a7c15))
		w := &worker{
			pool: pool,
			mg:   mg,
			in:   make(chan msg, cfg.QueueDepth),
			done: make(chan struct{}),
			free: c.free,
		}
		c.workers[j] = w
		c.bufs[j] = make([]int64, 0, cfg.BatchSize)
		go w.loop()
	}
	return c
}

// mix64 is a SplitMix64-style finalizer used for routing and seeding.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (c *Coordinator) route(item int64) int {
	if c.cfg.Route == RouteRoundRobin {
		j := c.rr
		c.rr++
		if c.rr == len(c.workers) {
			c.rr = 0
		}
		return j
	}
	return int(mix64(uint64(item)^c.hashKey) % uint64(len(c.workers)))
}

// ensureOpen panics if the coordinator has been closed. Callers hold mu.
func (c *Coordinator) ensureOpen() {
	if c.closed {
		panic("shard: coordinator used after Close")
	}
}

// Process routes one update to its shard.
func (c *Coordinator) Process(item int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureOpen()
	c.version++
	c.processLocked(item)
}

func (c *Coordinator) processLocked(item int64) {
	j := c.route(item)
	c.bufs[j] = append(c.bufs[j], item)
	if len(c.bufs[j]) == cap(c.bufs[j]) {
		c.flush(j)
	}
	c.total++
}

// ProcessBatch routes a slice of updates. The slice is copied into
// per-shard buffers; the caller may reuse it immediately. This is the
// preferred ingestion path: routing is the coordinator's only serial
// work, so its per-item cost bounds the achievable parallel speedup.
func (c *Coordinator) ProcessBatch(items []int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureOpen()
	if len(items) == 0 {
		return
	}
	c.version++
	if c.cfg.Route == RouteRoundRobin {
		for _, it := range items {
			c.processLocked(it)
		}
		return
	}
	nw := uint64(len(c.workers))
	key := c.hashKey
	for _, it := range items {
		j := mix64(uint64(it)^key) % nw
		buf := append(c.bufs[j], it)
		c.bufs[j] = buf
		if len(buf) == cap(buf) {
			c.flush(int(j))
		}
	}
	c.total += int64(len(items))
}

func (c *Coordinator) flush(j int) {
	if len(c.bufs[j]) == 0 {
		return
	}
	c.workers[j].in <- msg{items: c.bufs[j]}
	select {
	case buf := <-c.free:
		c.bufs[j] = buf
	default:
		c.bufs[j] = make([]int64, 0, c.cfg.BatchSize)
	}
}

// Drain hands every buffered update to its worker and blocks until all
// workers have applied everything sent so far. After Drain, the shards'
// pools reflect the full routed stream. Safe from any goroutine.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureOpen()
	c.drainLocked()
}

// drainLocked flushes and waits for worker acknowledgements. After it
// returns every worker is blocked on its (empty) input channel, so pool
// state is stable until the next mu-guarded send: the ack receive is
// the happens-before edge that makes the subsequent snapshot race-free.
func (c *Coordinator) drainLocked() {
	ack := make(chan struct{}, len(c.workers))
	for j := range c.workers {
		c.flush(j)
		c.workers[j].in <- msg{ack: ack}
	}
	for range c.workers {
		<-ack
	}
}

// querySnapshot is everything a merged query consumes after the
// coordinator mutex is released: the mixture weights and one trial per
// pool instance the query may touch (coins already flipped). The
// coordinator caches the last snapshot it built and shares it across
// queries until ingestion bumps the version; lens and the trial-table
// prefix a request captured under the mutex are immutable afterwards,
// so concurrent merges read them lock-free while later requests may
// still be appending further groups.
type querySnapshot struct {
	version uint64         // c.version the snapshot was built at
	lens    []int64        // per-shard local stream masses m_j
	total   int64          // Σ m_j
	trials  [][]core.Trial // [group][shard·T] interleaved below
	shards  int
	budget  int // T, the per-group trial budget
}

// snapshot drains and captures the query state for k groups. Callers
// hold mu. Trial tables are materialized eagerly — the pools' PCG
// streams and the shared zeta are coordinator state and must not be
// touched once ingestion resumes — so a query costs O(k·P·T) coin flips
// inside the lock and runs its mixture outside it.
func (c *Coordinator) snapshot(k int) querySnapshot {
	snap := querySnapshot{
		version: c.version,
		lens:    make([]int64, len(c.workers)),
		total:   c.total,
		trials:  make([][]core.Trial, 0, k),
		shards:  len(c.workers),
		budget:  c.trials,
	}
	for j, w := range c.workers {
		snap.lens[j] = w.pool.StreamLen()
	}
	c.extendTrials(&snap, k)
	return snap
}

// extendTrials materializes groups [len(trials), k) of snap's trial
// table from the live pools. Callers hold mu and guarantee the workers
// are idle (post-drain, or version-unchanged since the snapshot's own
// drain). Groups are append-only: entries below the prefix a request
// captured are never touched again, which is what lets concurrent
// merges read them lock-free.
func (c *Coordinator) extendTrials(snap *querySnapshot, k int) {
	for q := len(snap.trials); q < k; q++ {
		// One buffer per group, filled in place: TrialsGroupAppend keeps
		// each pool's coin consumption identical to TrialsGroup's while
		// skipping the per-pool intermediate slice.
		buf := make([]core.Trial, 0, len(c.workers)*c.trials)
		for _, w := range c.workers {
			buf = w.pool.TrialsGroupAppend(buf, q)
		}
		snap.trials = append(snap.trials, buf)
	}
}

// mergeGroup runs the m_j/m mixture over group q's snapshot trials:
// trial t consumes the next unused instance of a shard drawn with
// probability m_j/m, and the first acceptance wins — exactly the
// single-machine pool law (see the package comment). src and used are
// per-request state, so shared snapshots serve concurrent merges.
func (snap *querySnapshot) mergeGroup(src *rng.PCG, used []int, q int) (sample.Outcome, bool) {
	clear(used)
	for t := 0; t < snap.budget; t++ {
		j := drawShard(src, snap.lens, snap.total)
		tr := snap.trials[q][j*snap.budget+used[j]]
		used[j]++
		if tr.OK {
			return sample.Outcome{
				Item: tr.Out.Item,
				Freq: tr.Out.AfterCount,
			}, true
		}
	}
	return sample.Outcome{}, false
}

// Sample merges the shard pools and returns an item with exactly the
// single-machine law G(f_i)/F_G over the full routed stream (see the
// package comment for the argument), ok=false on FAIL. An empty stream
// returns Outcome{Bottom: true} with ok=true. Safe from any goroutine.
func (c *Coordinator) Sample() (sample.Outcome, bool) {
	outs, n := c.SampleK(1)
	if n == 0 {
		return sample.Outcome{}, false
	}
	return outs[0], true
}

// SampleK returns up to k mutually independent merged samples — the
// m_j/m mixture run once per disjoint query group — each with exactly
// the single-machine law. k is clamped to the Queries count provisioned
// in Config; the returned slice holds the draws that succeeded, in
// group order, and the int is their count. An empty stream succeeds
// with k ⊥ outcomes. Safe from any goroutine (see the package
// comment's concurrency contract).
func (c *Coordinator) SampleK(k int) ([]sample.Outcome, int) {
	outs, n, _ := c.SampleKLen(k)
	return outs, n
}

// SampleKLen is SampleK plus the routed stream mass the answer is
// exact with respect to — the mass captured by the query's own drain.
// Callers that report the mass alongside the outcomes (the sample/serve
// handlers) need it from the same drain: reading StreamLen separately
// races with a concurrent producer and can pair a sample with a mass
// it never saw.
func (c *Coordinator) SampleKLen(k int) ([]sample.Outcome, int, int64) {
	outs, n, total, _ := c.SampleKLenShared(k)
	return outs, n, total
}

// SampleKLenShared is SampleKLen plus a flag reporting whether the
// answer came from the shared query snapshot (true) or paid its own
// drain-and-materialize (false) — the signal sample/serve's node
// exposes as tp_node_query_snapshot_shared_total. Concurrent callers
// against an unchanged coordinator share one snapshot build; each still
// draws its own independent split of the mixture RNG, so every answer
// carries the exact merged law (see the package comment's concurrency
// contract for the cross-request correlation this implies).
func (c *Coordinator) SampleKLenShared(k int) ([]sample.Outcome, int, int64, bool) {
	if k < 1 {
		panic("shard: SampleK needs k ≥ 1")
	}
	if k > c.queries {
		k = c.queries
	}
	view, src, shared, empty := c.shareSnapshot(k)
	if empty {
		outs := make([]sample.Outcome, k)
		for i := range outs {
			outs[i] = sample.Outcome{Bottom: true}
		}
		return outs, k, 0, shared
	}
	// The merge runs on the snapshot view, off-lock: ingestion proceeds
	// and other queries share the same frozen trials concurrently.
	used := make([]int, view.shards)
	outs := make([]sample.Outcome, 0, k)
	for q := 0; q < k; q++ {
		if out, ok := view.mergeGroup(&src, used, q); ok {
			outs = append(outs, out)
		}
	}
	return outs, len(outs), view.total, shared
}

// shareSnapshot is the locked half of a query: reuse the cached
// snapshot when the stream version is unchanged, otherwise drain and
// build (and cache) a fresh one. The returned view's trial table is
// capped at k groups captured under the mutex — later extensions
// append beyond it, so the view is safe to read lock-free. src is the
// request's own split of the mixture RNG; empty reports a zero-length
// stream (⊥ answer). The deferred unlock keeps the mutex releasable on
// the used-after-Close panic path.
func (c *Coordinator) shareSnapshot(k int) (view querySnapshot, src rng.PCG, shared, empty bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureOpen()
	if s := c.qsnap; s != nil && s.version == c.version {
		// Version unchanged ⇒ no updates were routed since the snapshot's
		// own drain ⇒ the buffers are empty and every worker is idle, so
		// extending the trial table (a larger k than any seen this
		// version) reads stable pool state without another drain.
		c.extendTrials(s, k)
		c.qsnapShared++
		view = *s
		view.trials = s.trials[:k:k]
		return view, c.src.SplitPCG(), true, false
	}
	c.drainLocked()
	if c.total == 0 {
		return querySnapshot{}, rng.PCG{}, false, true
	}
	s := c.snapshot(k)
	c.qsnap = &s
	c.qsnapBuilds++
	view = s
	view.trials = s.trials[:k:k]
	return view, c.src.SplitPCG(), false, false
}

// QuerySnapshotCounters reports how many queries built a fresh drained
// snapshot and how many were answered from the shared one — the node
// tier's cache-effectiveness signal. Safe from any goroutine, including
// after Close.
func (c *Coordinator) QuerySnapshotCounters() (builds, shared int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.qsnapBuilds, c.qsnapShared
}

// drawShard picks shard j with probability lens[j]/total by drawing a
// uniform global stream position. The draw is 64-bit (rng.Int63n):
// stream masses beyond 2³¹ must not truncate on 32-bit platforms,
// where an int-width draw would corrupt the mixture weights.
func drawShard(src *rng.PCG, lens []int64, total int64) int {
	x := src.Int63n(total)
	for j, l := range lens {
		if x < l {
			return j
		}
		x -= l
	}
	return len(lens) - 1 // unreachable: Σlens == total after a drain
}

// Close shuts the workers down. Ingestion and query calls after Close
// panic (see the package comment); the read-only accessors stay
// usable. Close itself is idempotent and safe from any goroutine.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, w := range c.workers {
		close(w.in)
	}
	for _, w := range c.workers {
		<-w.done
	}
}

// Shards returns the worker count P.
func (c *Coordinator) Shards() int { return len(c.workers) }

// StreamLen returns the number of updates routed so far.
func (c *Coordinator) StreamLen() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Trials returns the per-query trial budget T (also each shard's
// per-group pool size — see the package comment on full provisioning).
func (c *Coordinator) Trials() int { return c.trials }

// Queries returns the provisioned query-group count.
func (c *Coordinator) Queries() int { return c.queries }

// BitsUsed reports the live size of every shard pool (and normalizer
// sketch) in bits. It drains first: workers may still be applying
// queued batches, and their pool state must not be read concurrently.
// Safe from any goroutine.
func (c *Coordinator) BitsUsed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureOpen()
	c.drainLocked()
	var b int64 = 512
	for _, w := range c.workers {
		b += w.pool.BitsUsed()
		if w.mg != nil {
			b += w.mg.BitsUsed()
		}
	}
	return b
}
