package shard

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/stream"
	"repro/sample"
	"repro/sample/snap"
)

// TestCoordinatorSnapshotContinuation: snapshot a coordinator
// mid-stream, restore it, feed the identical suffix to both, and
// demand identical merged queries — the cross-process counterpart of
// the sampler round-trip claim. Covers the measure path (L1,
// round-robin) and the Lp p>1 path (hash routing + per-shard
// Misra–Gries normalizers).
func TestCoordinatorSnapshotContinuation(t *testing.T) {
	gen := stream.NewGenerator(rng.New(31))
	items := gen.Zipf(1<<10, 1<<14, 1.2)
	half := len(items) / 2

	cases := []struct {
		name string
		mk   func() *Coordinator
	}{
		{"l1-roundrobin", func() *Coordinator {
			return NewL1(0.1, 77, Config{Shards: 3, Route: RouteRoundRobin,
				BatchSize: 64, Queries: 2})
		}},
		{"lp2-hash", func() *Coordinator {
			return NewLp(2, 1<<10, int64(len(items))+1, 0.1, 77,
				Config{Shards: 4, BatchSize: 128, Queries: 2})
		}},
		{"lp0.5-hash", func() *Coordinator {
			return NewLp(0.5, 1<<10, int64(len(items))+1, 0.2, 77,
				Config{Shards: 2, BatchSize: 256})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := tc.mk()
			defer orig.Close()
			orig.ProcessBatch(items[:half])
			data, err := orig.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			restored, err := RestoreCoordinator(data)
			if err != nil {
				t.Fatalf("RestoreCoordinator: %v", err)
			}
			defer restored.Close()
			if got, want := restored.StreamLen(), orig.StreamLen(); got != want {
				t.Fatalf("restored StreamLen %d, want %d", got, want)
			}
			if restored.Shards() != orig.Shards() || restored.Trials() != orig.Trials() ||
				restored.Queries() != orig.Queries() {
				t.Fatalf("restored shape differs")
			}
			// Continue both with different batch boundaries on purpose.
			orig.ProcessBatch(items[half:])
			stream.ForEachChunk(items[half:], 100, restored.ProcessBatch)
			for round := 0; round < 4; round++ {
				a, na := orig.SampleK(2)
				b, nb := restored.SampleK(2)
				if na != nb || !reflect.DeepEqual(a, b) {
					t.Fatalf("round %d: merged queries diverge: %v (%d) vs %v (%d)",
						round, a, na, b, nb)
				}
			}
			if got, want := restored.BitsUsed(), orig.BitsUsed(); got != want {
				t.Fatalf("restored BitsUsed %d, want %d", got, want)
			}
		})
	}
}

// TestCoordinatorSnapshotDeterministic: a drained coordinator has
// exactly one encoding, reproduced after a restore round trip.
func TestCoordinatorSnapshotDeterministic(t *testing.T) {
	gen := stream.NewGenerator(rng.New(33))
	items := gen.Zipf(256, 4096, 1.1)
	c := NewLp(1.5, 256, int64(len(items))+1, 0.1, 9, Config{Shards: 2, BatchSize: 64})
	defer c.Close()
	c.ProcessBatch(items)
	a, err := c.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	b, err := c.Snapshot()
	if err != nil {
		t.Fatalf("second Snapshot: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("coordinator snapshot not deterministic")
	}
	restored, err := RestoreCoordinator(a)
	if err != nil {
		t.Fatalf("RestoreCoordinator: %v", err)
	}
	defer restored.Close()
	c2, err := restored.Snapshot()
	if err != nil {
		t.Fatalf("re-Snapshot: %v", err)
	}
	if !bytes.Equal(a, c2) {
		t.Fatalf("restore→snapshot does not reproduce the original encoding")
	}
}

// TestCoordinatorSnapshotRejects: corruption and cross-family inputs
// must error, never panic.
func TestCoordinatorSnapshotRejects(t *testing.T) {
	c := NewL1(0.1, 1, Config{Shards: 2})
	defer c.Close()
	c.Process(1)
	data, err := c.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for cut := 1; cut < len(data); cut += 11 {
		if _, err := RestoreCoordinator(data[:cut]); err == nil {
			t.Fatalf("truncation at %d restored", cut)
		}
	}
	// A sampler snapshot is not a coordinator snapshot.
	s := sample.NewL1(0.1, 1)
	s.Process(1)
	sdata, err := snap.Snapshot(s)
	if err != nil {
		t.Fatalf("sampler snapshot: %v", err)
	}
	if _, err := RestoreCoordinator(sdata); err == nil {
		t.Fatalf("sampler snapshot restored as coordinator")
	}
	// Custom measures refuse to snapshot.
	cc := New(customMeasure{}, 100, 0.1, 1, Config{Shards: 1})
	defer cc.Close()
	if _, err := cc.Snapshot(); err == nil {
		t.Fatalf("custom-measure coordinator snapshotted")
	}
}

type customMeasure struct{}

func (customMeasure) Name() string                 { return "custom" }
func (customMeasure) G(x int64) float64            { return float64(x) }
func (customMeasure) Increment(int64) float64      { return 1 }
func (customMeasure) Zeta(int64) float64           { return 1 }
func (customMeasure) LowerBoundFG(m int64) float64 { return float64(m) }

// TestSamplerStates: a coordinator snapshot explodes into one valid
// per-shard sampler state per worker — the masses sum to the routed
// total, every state restores through sample.FromState, and
// snap.MergeStates wires them into a queryable global sampler. Covers
// both constructor families, including the p>1 normalizer hand-off.
func TestSamplerStates(t *testing.T) {
	gen := stream.NewGenerator(rng.New(31))
	items := gen.Zipf(128, 3000, 1.2)
	cases := []struct {
		name string
		mk   func() *Coordinator
	}{
		{"l1", func() *Coordinator { return NewL1(0.1, 7, Config{Shards: 3}) }},
		{"lp2", func() *Coordinator {
			return NewLp(2, 128, int64(len(items))+1, 0.1, 7, Config{Shards: 3})
		}},
		{"mest-l1l2", func() *Coordinator {
			return New(sample.MeasureL1L2(), int64(len(items))+1, 0.1, 7, Config{Shards: 3})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.mk()
			defer c.Close()
			c.ProcessBatch(items)
			data, err := c.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			if !IsCoordinatorSnapshot(data) {
				t.Fatalf("coordinator snapshot not recognized")
			}
			states, err := SamplerStates(data)
			if err != nil {
				t.Fatalf("SamplerStates: %v", err)
			}
			if len(states) != c.Shards() {
				t.Fatalf("got %d states for %d shards", len(states), c.Shards())
			}
			var mass int64
			for j, st := range states {
				s, err := sample.FromState(st)
				if err != nil {
					t.Fatalf("state %d does not restore: %v", j, err)
				}
				mass += s.StreamLen()
			}
			if mass != c.StreamLen() {
				t.Fatalf("per-shard masses sum to %d, coordinator total %d", mass, c.StreamLen())
			}
			g, err := snap.MergeStates(99, states...)
			if err != nil {
				t.Fatalf("MergeStates: %v", err)
			}
			if out, ok := g.Sample(); !ok || out.Bottom {
				t.Fatalf("merged query failed: %+v ok=%v", out, ok)
			}
			if g.StreamLen() != c.StreamLen() {
				t.Fatalf("merged mass %d, coordinator total %d", g.StreamLen(), c.StreamLen())
			}
		})
	}
	// A sampler snapshot is neither sniffed nor exploded.
	s := sample.NewL1(0.1, 1)
	s.Process(1)
	sdata, err := snap.Snapshot(s)
	if err != nil {
		t.Fatalf("sampler snapshot: %v", err)
	}
	if IsCoordinatorSnapshot(sdata) {
		t.Fatalf("sampler snapshot sniffed as coordinator")
	}
	if _, err := SamplerStates(sdata); err == nil {
		t.Fatalf("sampler snapshot exploded as coordinator")
	}
}
