package shard

// Wire format v2 for coordinator snapshots — the fleet-checkpoint
// counterpart of sample/snap's sampler deltas, sharing the same v2
// preamble (magic, version 2, kind 0xC0, content-addressed base name)
// and the same contract: ApplyCoordinatorDelta(base, delta) returns
// the successor checkpoint's full v1 bytes bit-for-bit, so chains fold
// back into exactly the snapshot Coordinator.Snapshot would have cut.
// The payload is the routing scalars (total, round-robin cursor,
// router RNG) plus one presence bit per shard: an untouched shard —
// common under hash routing when a checkpoint interval's traffic
// misses it — costs a single byte, and a touched shard ships only its
// pool's core.GSamplerDelta (and normalizer delta, for Lp p > 1). The
// constructor spec and config are not re-encoded: a delta only applies
// to a checkpoint of the same coordinator, which the base carries and
// the name check enforces.

import (
	"fmt"

	"repro/internal/misragries"
	"repro/internal/wire"
	"repro/sample/snap"
)

// SnapshotDelta drains the coordinator and encodes its state as a v2
// delta against base — full v1 bytes of one of this coordinator's own
// earlier checkpoints (Snapshot). The coordinator stays usable
// afterwards.
func (c *Coordinator) SnapshotDelta(base []byte) ([]byte, error) {
	cur, err := c.Snapshot()
	if err != nil {
		return nil, err
	}
	return EncodeCoordinatorDelta(base, cur)
}

// EncodeCoordinatorDelta computes the v2 delta that turns the full v1
// coordinator snapshot base into cur. Both must come from the same
// coordinator (identical spec and config);
// ApplyCoordinatorDelta(base, result) reproduces cur bit-for-bit.
func EncodeCoordinatorDelta(base, cur []byte) ([]byte, error) {
	db, err := decodeCoordinator(base)
	if err != nil {
		return nil, fmt.Errorf("shard: delta base: %w", err)
	}
	dc, err := decodeCoordinator(cur)
	if err != nil {
		return nil, fmt.Errorf("shard: delta target: %w", err)
	}
	if db.spec != dc.spec || db.cfg != dc.cfg {
		return nil, fmt.Errorf("shard: delta base is a different coordinator (%+v/%+v vs %+v/%+v)",
			db.spec, db.cfg, dc.spec, dc.cfg)
	}
	w := &wire.Writer{}
	wire.PutDeltaHeader(w, wire.KindCoordinator, snap.Name(base))
	w.Varint(dc.total)
	w.Uvarint(uint64(dc.rr))
	w.U64(dc.hi)
	w.U64(dc.lo)
	w.Uvarint(uint64(len(dc.pools)))
	for j := range dc.pools {
		pd, err := dc.pools[j].Diff(db.pools[j])
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", j, err)
		}
		changed := pd.ChangedFrom(db.pools[j])
		var mgd misragries.Delta
		hasMG := dc.mgs[j] != nil
		if hasMG {
			if mgd, err = dc.mgs[j].Diff(*db.mgs[j]); err != nil {
				return nil, fmt.Errorf("shard %d normalizer: %w", j, err)
			}
			changed = changed || mgd.ChangedFrom(*db.mgs[j])
		}
		// One presence bit per shard: a shard the interval's traffic
		// missed costs a single byte.
		w.Bool(changed)
		if changed {
			wire.PutGSamplerDelta(w, pd)
			if hasMG {
				wire.PutMGDelta(w, mgd)
			}
		}
	}
	return w.Bytes(), nil
}

// ApplyCoordinatorDelta folds one v2 delta onto its base coordinator
// snapshot, returning the successor checkpoint's full v1 bytes. The
// delta must name this exact base (snap.ErrDeltaBaseMismatch wrapped
// otherwise). The result's semantic invariants are re-validated by
// whatever consumes the bytes next (RestoreCoordinator,
// SamplerStates), exactly as for bytes read off disk.
func ApplyCoordinatorDelta(base, delta []byte) ([]byte, error) {
	db, err := decodeCoordinator(base)
	if err != nil {
		return nil, fmt.Errorf("shard: delta base: %w", err)
	}
	r := wire.NewReader(delta)
	kind, bname := wire.DeltaHeader(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	if kind != wire.KindCoordinator {
		return nil, fmt.Errorf("shard: not a coordinator delta (kind %d)", kind)
	}
	if have := snap.Name(base); bname != have {
		return nil, fmt.Errorf("%w: delta wants base %s, applied to %s",
			snap.ErrDeltaBaseMismatch, bname, have)
	}
	db.total = r.Varint()
	db.rr = int(r.Uvarint() & 0xffff)
	db.hi = r.U64()
	db.lo = r.U64()
	if n := r.Count(1); r.Err() == nil && n != len(db.pools) {
		return nil, fmt.Errorf("shard: delta spans %d shards, base has %d", n, len(db.pools))
	}
	for j := range db.pools {
		if !r.Bool() {
			continue
		}
		pd := wire.GSamplerDeltaR(r)
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		pool, err := pd.Apply(db.pools[j])
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", j, err)
		}
		db.pools[j] = pool
		if db.mgs[j] != nil {
			mgd := wire.MGDeltaR(r)
			if err := r.Err(); err != nil {
				return nil, fmt.Errorf("shard: %w", err)
			}
			mg, err := mgd.Apply(*db.mgs[j])
			if err != nil {
				return nil, fmt.Errorf("shard %d normalizer: %w", j, err)
			}
			db.mgs[j] = &mg
		}
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	return encodeCoordinator(&db), nil
}

// ResolveCoordinatorChain folds a coordinator snapshot chain — one
// full v1 checkpoint followed by zero or more v2 deltas in application
// order — back into the final checkpoint's full v1 bytes, verifying
// every link's base name. It is the coordinator counterpart of
// snap.Resolve.
func ResolveCoordinatorChain(full []byte, deltas ...[]byte) ([]byte, error) {
	if v, _, err := wire.Sniff(full); err != nil || v != wire.FormatVersion {
		return nil, fmt.Errorf("shard: chain must start with a full v1 snapshot")
	}
	cur := full
	for i, d := range deltas {
		next, err := ApplyCoordinatorDelta(cur, d)
		if err != nil {
			return nil, fmt.Errorf("shard: resolve delta %d of %d: %w", i+1, len(deltas), err)
		}
		cur = next
	}
	return cur, nil
}
