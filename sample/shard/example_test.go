package shard_test

import (
	"fmt"

	"repro/sample/shard"
)

// Fan a stream across four worker goroutines and draw one merged
// sample: the output law is exactly the law a single sampler would
// have produced on the undivided stream, so sharding is purely an
// operational knob. Shards is pinned (the default tracks GOMAXPROCS)
// to keep the routing — and hence this output — reproducible.
func ExampleNewLp() {
	c := shard.NewLp(2, 16, 100, 0.05, 42, shard.Config{Shards: 4})
	defer c.Close()
	for i := 0; i < 99; i++ {
		c.Process(5)
	}
	c.Process(11)
	out, ok := c.Sample()
	fmt.Println(ok, out.Item) // item 5 with probability 9801/9802
	// Output:
	// true 5
}

// The coordinator implements sample.Sampler: ProcessBatch is the
// preferred high-throughput ingestion path.
func ExampleCoordinator_ProcessBatch() {
	c := shard.NewL1(0.05, 7, shard.Config{Shards: 2})
	defer c.Close()
	batch := make([]int64, 1000)
	for i := range batch {
		batch[i] = int64(i % 3)
	}
	c.ProcessBatch(batch)
	fmt.Println(c.StreamLen(), c.Shards())
	// Output:
	// 1000 2
}
