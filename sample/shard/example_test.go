package shard_test

import (
	"fmt"

	"repro/sample/shard"
)

// Fan a stream across four worker goroutines and draw one merged
// sample: the output law is exactly the law a single sampler would
// have produced on the undivided stream, so sharding is purely an
// operational knob. Shards is pinned (the default tracks GOMAXPROCS)
// to keep the routing — and hence this output — reproducible.
func ExampleNewLp() {
	c := shard.NewLp(2, 16, 100, 0.05, 42, shard.Config{Shards: 4})
	defer c.Close()
	for i := 0; i < 99; i++ {
		c.Process(5)
	}
	c.Process(11)
	out, ok := c.Sample()
	fmt.Println(ok, out.Item) // item 5 with probability 9801/9802
	// Output:
	// true 5
}

// Provision query groups with Config.Queries and draw a batch of
// mutually independent merged samples in one query. A single-item
// stream makes the (random) draws deterministic: every group answers
// the only possible item.
func ExampleCoordinator_SampleK() {
	c := shard.NewL1(0.05, 3, shard.Config{Shards: 2, Queries: 4})
	defer c.Close()
	for i := 0; i < 50; i++ {
		c.Process(9)
	}
	outs, n := c.SampleK(4)
	fmt.Println(n, outs[0].Item, outs[3].Item)
	// Output:
	// 4 9 9
}

// Checkpoint a whole fleet mid-stream and restore it: the snapshot
// drains the workers, records every per-shard pool with its local
// stream mass m_j, and the restored coordinator continues ingestion,
// routing and merged queries bit-for-bit — feed both the same suffix
// and they answer identically. A single-item stream keeps the (random)
// merged draw deterministic for this example's output.
func ExampleCoordinator_Snapshot() {
	c := shard.NewLp(2, 16, 200, 0.05, 42, shard.Config{Shards: 2})
	defer c.Close()
	for i := 0; i < 80; i++ {
		c.Process(5)
	}
	data, err := c.Snapshot()
	if err != nil {
		panic(err)
	}

	restored, err := shard.RestoreCoordinator(data)
	if err != nil {
		panic(err)
	}
	defer restored.Close()
	restored.Process(5) // ingestion continues where the checkpoint stopped
	out, ok := restored.Sample()
	fmt.Println(ok, out.Item, restored.StreamLen())
	// Output:
	// true 5 81
}

// The coordinator implements sample.Sampler: ProcessBatch is the
// preferred high-throughput ingestion path.
func ExampleCoordinator_ProcessBatch() {
	c := shard.NewL1(0.05, 7, shard.Config{Shards: 2})
	defer c.Close()
	batch := make([]int64, 1000)
	for i := range batch {
		batch[i] = int64(i % 3)
	}
	c.ProcessBatch(batch)
	fmt.Println(c.StreamLen(), c.Shards())
	// Output:
	// 1000 2
}
