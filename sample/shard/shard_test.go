package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/sample"
)

var _ sample.Sampler = (*Coordinator)(nil)

// drawMany draws one merged sample per independent coordinator and
// returns the empirical histogram and FAIL count.
func drawMany(reps int, mk func(seed uint64) *Coordinator,
	items []int64) (stats.Histogram, int) {
	h := stats.Histogram{}
	fails := 0
	for rep := 0; rep < reps; rep++ {
		c := mk(uint64(rep) + 1)
		c.ProcessBatch(items)
		out, ok := c.Sample()
		c.Close()
		if !ok {
			fails++
			continue
		}
		h.Add(out.Item)
	}
	return h, fails
}

// The acceptance test for the sharded subsystem: the 4-shard merged
// sampler's empirical distribution must be statistically
// indistinguishable from the single-sampler law — which, by Theorem
// 3.1, is the exact law G(f_i)/F_G — on the same stream. A chi-square
// goodness-of-fit p-value near 0 would expose any merge bias; a biased
// merge (e.g. the naive "uniform over all shards' acceptances" rule)
// separates decisively at these sample sizes.
func TestMergedLawMatchesSingleSamplerHuber(t *testing.T) {
	freq := map[int64]int64{1: 300, 2: 150, 3: 90, 4: 60, 5: 30, 6: 15, 7: 10, 8: 5}
	gen := stream.NewGenerator(rng.New(101))
	items := gen.FromFrequencies(freq)
	est := measure.Huber{Tau: 3}
	target := stats.GDistribution(freq, est.G)

	const reps = 4000
	h, fails := drawMany(reps, func(seed uint64) *Coordinator {
		return New(est, int64(len(items)), 0.05, seed,
			Config{Shards: 4, BatchSize: 128})
	}, items)

	if frac := float64(fails) / reps; frac > 0.05 {
		t.Fatalf("FAIL rate %.3f exceeds δ=0.05", frac)
	}
	chi, dof, p := stats.ChiSquare(h, target, 5)
	t.Logf("chi2=%.2f dof=%d p=%.4f tv=%.4f noise=%.4f",
		chi, dof, p, stats.TV(h, target), stats.ExpectedTV(target, h.Total()))
	if p < 1e-3 {
		t.Fatalf("merged law deviates from the single-sampler law: chi2=%.2f dof=%d p=%.5f",
			chi, dof, p)
	}
}

// Same acceptance test through the Lp (p=2) constructor, which also
// exercises the cross-shard Misra–Gries ζ merge.
func TestMergedLawMatchesSingleSamplerL2(t *testing.T) {
	freq := map[int64]int64{10: 200, 11: 120, 12: 80, 13: 40, 14: 20, 15: 10}
	gen := stream.NewGenerator(rng.New(102))
	items := gen.FromFrequencies(freq)
	target := stats.GDistribution(freq, measure.Lp{P: 2}.G)

	const reps = 4000
	h, fails := drawMany(reps, func(seed uint64) *Coordinator {
		return NewLp(2, 64, int64(len(items)), 0.1, seed,
			Config{Shards: 4, BatchSize: 64})
	}, items)

	if frac := float64(fails) / reps; frac > 0.1 {
		t.Fatalf("FAIL rate %.3f exceeds δ=0.1", frac)
	}
	chi, dof, p := stats.ChiSquare(h, target, 5)
	t.Logf("chi2=%.2f dof=%d p=%.4f tv=%.4f noise=%.4f",
		chi, dof, p, stats.TV(h, target), stats.ExpectedTV(target, h.Total()))
	if p < 1e-3 {
		t.Fatalf("merged L2 law deviates: chi2=%.2f dof=%d p=%.5f", chi, dof, p)
	}
}

// Round-robin routing is exact for L1 (linear G): position-partitioned
// local frequencies sum back to the global vector.
func TestRoundRobinL1Exact(t *testing.T) {
	freq := map[int64]int64{0: 160, 1: 80, 2: 40, 3: 20, 4: 10}
	gen := stream.NewGenerator(rng.New(103))
	items := gen.FromFrequencies(freq)
	target := stats.GDistribution(freq, measure.Lp{P: 1}.G)

	const reps = 4000
	h, fails := drawMany(reps, func(seed uint64) *Coordinator {
		return NewL1(0.05, seed+100000, Config{Shards: 3, Route: RouteRoundRobin,
			BatchSize: 32})
	}, items)
	if frac := float64(fails) / reps; frac > 0.05 {
		t.Fatalf("FAIL rate %.3f exceeds δ=0.05", frac)
	}
	chi, dof, p := stats.ChiSquare(h, target, 5)
	t.Logf("chi2=%.2f dof=%d p=%.4f", chi, dof, p)
	if p < 1e-3 {
		t.Fatalf("round-robin L1 law deviates: chi2=%.2f dof=%d p=%.5f", chi, dof, p)
	}
}

// The merged law must not depend on the shard count: the whole point of
// exact composition is that P is an operational knob, not a statistical
// one. Check P = 1 (degenerate single-machine case) and P = 5 against
// the same target.
func TestShardCountInvariance(t *testing.T) {
	freq := map[int64]int64{0: 120, 1: 60, 2: 30, 3: 15}
	gen := stream.NewGenerator(rng.New(104))
	items := gen.FromFrequencies(freq)
	est := measure.L1L2{}
	target := stats.GDistribution(freq, est.G)
	for _, shards := range []int{1, 5} {
		h, _ := drawMany(3000, func(seed uint64) *Coordinator {
			return New(est, int64(len(items)), 0.05, seed,
				Config{Shards: shards, BatchSize: 64})
		}, items)
		chi, dof, p := stats.ChiSquare(h, target, 5)
		t.Logf("P=%d: chi2=%.2f dof=%d p=%.4f", shards, chi, dof, p)
		if p < 1e-3 {
			t.Fatalf("P=%d law deviates: chi2=%.2f dof=%d p=%.5f", shards, chi, dof, p)
		}
	}
}

// Item-by-item Process and ProcessBatch must drive the coordinator to
// the same state: same routed substreams, same merged answer for the
// same seed.
func TestProcessBatchMatchesProcess(t *testing.T) {
	gen := stream.NewGenerator(rng.New(105))
	items := gen.Zipf(64, 3000, 1.2)
	mk := func(seed uint64) *Coordinator {
		return NewLp(2, 64, 3000, 0.1, seed, Config{Shards: 4, BatchSize: 100})
	}
	a := mk(9)
	for _, it := range items {
		a.Process(it)
	}
	outA, okA := a.Sample()
	a.Close()

	b := mk(9)
	b.ProcessBatch(items)
	outB, okB := b.Sample()
	b.Close()

	if okA != okB || outA != outB {
		t.Fatalf("Process %+v/%v vs ProcessBatch %+v/%v", outA, okA, outB, okB)
	}
}

// An empty stream answers ⊥, never FAIL (Definition 1.1).
func TestEmptyStreamBottom(t *testing.T) {
	c := NewL1(0.1, 1, Config{Shards: 3})
	defer c.Close()
	out, ok := c.Sample()
	if !ok || !out.Bottom {
		t.Fatalf("empty stream: got %+v ok=%v, want ⊥", out, ok)
	}
}

// Under hash routing every occurrence of an item lands in one shard, so
// the reported after-count metadata is the item's global after-count:
// strictly less than its global frequency.
func TestHashRoutingFreqMetadata(t *testing.T) {
	freq := map[int64]int64{3: 50, 4: 25, 5: 12}
	gen := stream.NewGenerator(rng.New(106))
	items := gen.FromFrequencies(freq)
	for rep := 0; rep < 200; rep++ {
		c := New(measure.L1L2{}, int64(len(items)), 0.05, uint64(rep)+1,
			Config{Shards: 4, BatchSize: 16})
		c.ProcessBatch(items)
		out, ok := c.Sample()
		c.Close()
		if !ok {
			continue
		}
		if out.Freq < 0 || out.Freq >= freq[out.Item] {
			t.Fatalf("after-count %d out of range [0, %d) for item %d",
				out.Freq, freq[out.Item], out.Item)
		}
	}
}

// Sampling is deterministic given the seed: the same stream and seed
// reproduce the same merged outcome, goroutines notwithstanding.
func TestDeterministicGivenSeed(t *testing.T) {
	gen := stream.NewGenerator(rng.New(107))
	items := gen.Zipf(32, 2000, 1.3)
	run := func() (sample.Outcome, bool) {
		c := New(measure.Huber{Tau: 2}, 2000, 0.1, 42, Config{Shards: 4})
		defer c.Close()
		c.ProcessBatch(items)
		return c.Sample()
	}
	o1, ok1 := run()
	o2, ok2 := run()
	if o1 != o2 || ok1 != ok2 {
		t.Fatalf("non-deterministic: %+v/%v vs %+v/%v", o1, ok1, o2, ok2)
	}
}

// Draining mid-stream and sampling repeatedly must keep answering with
// respect to everything processed so far.
func TestSampleMidStream(t *testing.T) {
	c := NewL1(0.05, 7, Config{Shards: 2, BatchSize: 8})
	defer c.Close()
	for i := int64(0); i < 100; i++ {
		c.Process(i % 5)
	}
	if out, ok := c.Sample(); !ok || out.Bottom {
		t.Fatalf("mid-stream sample: %+v ok=%v", out, ok)
	}
	for i := int64(0); i < 100; i++ {
		c.Process(5)
	}
	if got := c.StreamLen(); got != 200 {
		t.Fatalf("StreamLen = %d, want 200", got)
	}
	if out, ok := c.Sample(); !ok || out.Bottom {
		t.Fatalf("second sample: %+v ok=%v", out, ok)
	}
}

// When ζ is a data-independent constant, sharded and single-machine
// samplers run the same number of trials with the same per-trial accept
// probability F_G/(ζm), so the FAIL rates must agree. Engineered here
// with L0.5 (ζ = 1) on a single-heavy-item stream, where the per-trial
// accept probability √m/m is small enough that FAIL is common.
func TestFailRateMatchesSingleMachine(t *testing.T) {
	items := make([]int64, 1000) // one item, frequency 1000
	m := int64(len(items))
	const reps = 2000
	_, failsShard := drawMany(reps, func(seed uint64) *Coordinator {
		return NewLp(0.5, 8, m, 0.45, seed, Config{Shards: 4, BatchSize: 32})
	}, items)
	failsSingle := 0
	for rep := 0; rep < reps; rep++ {
		s := core.NewLpSampler(0.5, 8, m, 0.45, uint64(rep)+1)
		for _, it := range items {
			s.Process(it)
		}
		if _, ok := s.Sample(); !ok {
			failsSingle++
		}
	}
	pShard := float64(failsShard) / reps
	pSingle := float64(failsSingle) / reps
	t.Logf("FAIL rate: sharded %.3f, single %.3f", pShard, pSingle)
	// Wilson intervals at n=2000 are about ±0.02 here.
	if diff := pShard - pSingle; diff > 0.05 || diff < -0.05 {
		t.Fatalf("FAIL rates diverge: sharded %.3f vs single %.3f", pShard, pSingle)
	}
}

// For Lp with p > 1, each shard's Misra–Gries sketch runs on a shorter
// local stream and so carries a smaller additive error: the merged ζ is
// typically tighter than the single-machine one, acceptance higher, and
// FAIL rarer. The law is unaffected (ζ cancels in the conditional
// output law); only the failure direction is one-sided.
func TestLpFailRateNoWorseThanSingleMachine(t *testing.T) {
	freq := map[int64]int64{}
	for i := int64(0); i < 40; i++ {
		freq[i] = 4
	}
	gen := stream.NewGenerator(rng.New(108))
	items := gen.FromFrequencies(freq)
	const reps = 1500
	_, failsShard := drawMany(reps, func(seed uint64) *Coordinator {
		return NewLp(2, 64, int64(len(items)), 0.45, seed,
			Config{Shards: 4, BatchSize: 32})
	}, items)
	failsSingle := 0
	for rep := 0; rep < reps; rep++ {
		s := core.NewLpSampler(2, 64, int64(len(items)), 0.45, uint64(rep)+1)
		for _, it := range items {
			s.Process(it)
		}
		if _, ok := s.Sample(); !ok {
			failsSingle++
		}
	}
	pShard := float64(failsShard) / reps
	pSingle := float64(failsSingle) / reps
	t.Logf("FAIL rate: sharded %.3f, single %.3f", pShard, pSingle)
	if pShard > pSingle+0.03 {
		t.Fatalf("sharded FAIL rate %.3f worse than single-machine %.3f",
			pShard, pSingle)
	}
}
