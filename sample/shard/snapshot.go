package shard

// Coordinator checkpoint/restore: the sharded counterpart of the
// sample/snap sampler codec, sharing its wire substrate and format
// version (internal/wire). A coordinator snapshot is the drained
// constructor spec + effective Config + routing state + every shard
// pool with its local stream mass m_j — everything the exact merged
// query law depends on — so a restored coordinator continues
// ingestion, routing, and merged queries bit-for-bit.

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/misragries"
	"repro/internal/wire"
	"repro/sample"
)

// Snapshot drains the coordinator and encodes its complete state into
// the versioned snapshot wire format. The coordinator stays usable
// afterwards. It errors for coordinators built with a custom measure
// (only the predefined measures have stable wire names). Safe from any
// goroutine.
func (c *Coordinator) Snapshot() ([]byte, error) {
	d, err := c.exportState()
	if err != nil {
		return nil, err
	}
	return encodeCoordinator(d), nil
}

// exportState drains the coordinator and captures its complete state
// in decoded form — the shared substrate of Snapshot and SnapshotDelta.
func (c *Coordinator) exportState() (*decodedCoordinator, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureOpen()
	if !c.spec.known {
		return nil, fmt.Errorf("shard: custom measures cannot be snapshotted")
	}
	c.drainLocked()
	// Drop the shared query snapshot: a restored coordinator starts
	// without one, so the original must rebuild from the same
	// checkpointed pool state to keep post-checkpoint queries
	// bit-for-bit identical on both sides.
	c.qsnap = nil
	d := &decodedCoordinator{spec: c.spec, cfg: c.cfg, total: c.total, rr: c.rr}
	d.hi, d.lo = c.src.State()
	d.pools = make([]core.GSamplerState, len(c.workers))
	d.mgs = make([]*misragries.State, len(c.workers))
	// Per-shard pools (drained, so the exported states reflect every
	// routed update) with their normalizer sketches.
	for j, wk := range c.workers {
		d.pools[j] = wk.pool.ExportState()
		if wk.mg != nil {
			mg := wk.mg.ExportState()
			d.mgs[j] = &mg
		}
	}
	return d, nil
}

// encodeCoordinator is the single v1 encoder for coordinator state,
// shared by the live Snapshot path and the delta codec's re-encode
// (ApplyCoordinatorDelta): one state, one encoding, whichever path
// produced it.
func encodeCoordinator(d *decodedCoordinator) []byte {
	w := &wire.Writer{}
	wire.PutHeader(w, wire.KindCoordinator)
	// Constructor spec.
	w.U8(d.spec.kind)
	w.String(d.spec.measure)
	w.F64(d.spec.tau)
	w.F64(d.spec.p)
	w.Varint(d.spec.n)
	w.Varint(d.spec.m)
	w.F64(d.spec.delta)
	w.U64(d.spec.seed)
	// Effective config (withDefaults already applied at build).
	w.Uvarint(uint64(d.cfg.Shards))
	w.U8(uint8(d.cfg.Route))
	w.Uvarint(uint64(d.cfg.BatchSize))
	w.Uvarint(uint64(d.cfg.QueueDepth))
	w.Uvarint(uint64(d.cfg.Queries))
	// Routing and query state.
	w.Varint(d.total)
	w.Uvarint(uint64(d.rr))
	w.U64(d.hi)
	w.U64(d.lo)
	for j := range d.pools {
		wire.PutGSamplerState(w, d.pools[j])
		w.Bool(d.mgs[j] != nil)
		if d.mgs[j] != nil {
			wire.PutMGState(w, *d.mgs[j])
		}
	}
	return w.Bytes()
}

// decodedCoordinator is the parsed form of a coordinator snapshot,
// validated before any allocation happens.
type decodedCoordinator struct {
	spec  coordSpec
	cfg   Config
	total int64
	rr    int
	hi    uint64
	lo    uint64
	pools []core.GSamplerState
	mgs   []*misragries.State
}

// RestoreCoordinator rebuilds a working coordinator — workers, pools,
// routing state — from a snapshot taken with Coordinator.Snapshot.
// The restored coordinator continues ingestion and merged queries
// bit-for-bit from the captured point.
func RestoreCoordinator(data []byte) (*Coordinator, error) {
	d, err := decodeCoordinator(data)
	if err != nil {
		return nil, err
	}
	var c *Coordinator
	switch d.spec.kind {
	case coordMeasure:
		g, err := sample.MeasureFromSpec(d.spec.measure, d.spec.tau)
		if err != nil {
			return nil, err
		}
		c = New(g, d.spec.m, d.spec.delta, d.spec.seed, d.cfg)
	case coordLp:
		c = NewLp(d.spec.p, d.spec.n, d.spec.m, d.spec.delta, d.spec.seed, d.cfg)
	}
	c.total = d.total
	c.rr = d.rr
	c.src.SetState(d.hi, d.lo)
	for j, wk := range c.workers {
		if wk.mg != nil {
			if err := wk.mg.ImportState(*d.mgs[j]); err != nil {
				c.Close()
				return nil, fmt.Errorf("shard %d normalizer: %w", j, err)
			}
			// Same guard as core.LpSampler.ImportState: instance counts
			// must stay below the shard's own normalizer bound, or the
			// first query's rejection step would panic on acc > 1.
			if err := d.pools[j].ValidateNormalizerBound(wk.mg.MaxUpperBound()); err != nil {
				c.Close()
				return nil, fmt.Errorf("shard %d: %w", j, err)
			}
		}
		if err := wk.pool.ImportState(d.pools[j]); err != nil {
			c.Close()
			return nil, fmt.Errorf("shard %d: %w", j, err)
		}
	}
	return c, nil
}

// IsCoordinatorSnapshot reports whether data carries the coordinator
// wire kind (0xC0) rather than a single-sampler kind. It reads only
// the header — magic, version, kind — so it is a cheap sniff for
// callers (the sample/serve aggregator) that receive snapshot bytes of
// either flavor and must pick a decoder.
func IsCoordinatorSnapshot(data []byte) bool {
	r := wire.NewReader(data)
	kind := wire.Header(r)
	return r.Err() == nil && kind == wire.KindCoordinator
}

// SamplerStates decodes a coordinator snapshot into one sample.State
// per shard: the coordinator's constructor spec re-expressed as the
// equivalent single-sampler Spec (New → KindMEstimator, NewLp/NewL1 →
// KindLp/the lp measure) paired with that shard's drained pool — and,
// for Lp with p > 1, its Misra–Gries normalizer.
//
// This is the bridge between fleet checkpoints and the cross-process
// merge: snap.MergeStates over the union of several coordinators'
// SamplerStates runs the m_j/m mixture across every (machine, shard)
// pool at once, which is exactly the law argument of this package's
// comment with "worker goroutine" replaced by "pool wherever it
// lives". The per-shard m_j travel inside each pool state, so no extra
// bookkeeping crosses the wire. Two caveats carry over from
// snap.Merge: coordinators on different machines need distinct seeds
// (each pool's RNG state travels in its state, and the per-shard pools
// of one coordinator are already independently seeded — but two
// coordinators sharing a seed would ship identical reservoirs), and
// for nonlinear measures the machines must partition items just as
// hash routing partitions them across shards.
func SamplerStates(data []byte) ([]sample.State, error) {
	d, err := decodeCoordinator(data)
	if err != nil {
		return nil, err
	}
	states := make([]sample.State, d.cfg.Shards)
	switch d.spec.kind {
	case coordMeasure:
		spec := sample.Spec{Kind: sample.KindMEstimator, Measure: d.spec.measure,
			Tau: d.spec.tau, M: d.spec.m, Delta: d.spec.delta,
			Queries: d.cfg.Queries, Seed: d.spec.seed}
		if d.spec.measure == "lp" && d.spec.tau == 1 && d.spec.m == 1 {
			// Exactly what shard.NewL1 builds — surface it as KindL1 so
			// the states merge with bare sample.NewL1 snapshots (the two
			// constructors build identical pools; only the spec label
			// differs, and compatibleSpecs compares labels).
			spec = sample.Spec{Kind: sample.KindL1, Delta: d.spec.delta,
				Queries: d.cfg.Queries, Seed: d.spec.seed}
		}
		for j := range states {
			pool := d.pools[j]
			states[j] = sample.State{Spec: spec, G: &pool}
		}
	case coordLp:
		spec := sample.Spec{Kind: sample.KindLp, P: d.spec.p, N: d.spec.n,
			M: d.spec.m, Delta: d.spec.delta,
			Queries: d.cfg.Queries, Seed: d.spec.seed}
		for j := range states {
			lp := core.LpSamplerState{Pool: d.pools[j], MG: d.mgs[j]}
			states[j] = sample.State{Spec: spec, Lp: &lp}
		}
	default:
		return nil, fmt.Errorf("shard: unknown coordinator kind %d", d.spec.kind)
	}
	return states, nil
}

// Describe returns a short human-readable rendering of the constructor
// call that built the coordinator — "lp p=2 n=1024 m=65537 δ=0.1" or
// "measure=l1l2 m=50000 δ=0.1" — for logs and serving-layer stats
// endpoints. It is informational only; the machine-readable form is
// the Snapshot spec.
func (c *Coordinator) Describe() string {
	switch c.spec.kind {
	case coordLp:
		return fmt.Sprintf("lp p=%g n=%d m=%d δ=%g", c.spec.p, c.spec.n, c.spec.m, c.spec.delta)
	case coordMeasure:
		if c.spec.measure == "lp" && c.spec.tau == 1 && c.spec.m == 1 {
			return fmt.Sprintf("l1 δ=%g", c.spec.delta) // NewL1's fingerprint
		}
		name := c.spec.measure
		if !c.spec.known {
			name = "custom"
		}
		s := fmt.Sprintf("measure=%s", name)
		if c.spec.tau != 0 {
			s += fmt.Sprintf(" τ=%g", c.spec.tau)
		}
		return s + fmt.Sprintf(" m=%d δ=%g", c.spec.m, c.spec.delta)
	}
	return fmt.Sprintf("kind=%d", c.spec.kind)
}

func decodeCoordinator(data []byte) (decodedCoordinator, error) {
	var d decodedCoordinator
	r := wire.NewReader(data)
	if kind := wire.Header(r); r.Err() == nil && kind != wire.KindCoordinator {
		return d, fmt.Errorf("shard: not a coordinator snapshot (kind %d)", kind)
	}
	d.spec.kind = r.U8()
	d.spec.measure = r.String(32)
	d.spec.tau = r.F64()
	d.spec.p = r.F64()
	d.spec.n = r.Varint()
	d.spec.m = r.Varint()
	d.spec.delta = r.F64()
	d.spec.seed = r.U64()
	d.spec.known = true
	d.cfg = Config{
		Shards:     int(r.Uvarint() & 0xffff),
		Route:      Route(r.U8()),
		BatchSize:  int(r.Uvarint() & 0x3ffffff),
		QueueDepth: int(r.Uvarint() & 0xfffff),
		Queries:    int(r.Uvarint() & 0xfffff),
	}
	d.total = r.Varint()
	d.rr = int(r.Uvarint() & 0xffff)
	d.hi = r.U64()
	d.lo = r.U64()
	if r.Err() != nil {
		return d, fmt.Errorf("shard: %w", r.Err())
	}
	trials, err := validateCoordinatorHead(d)
	if err != nil {
		return d, err
	}
	d.pools = make([]core.GSamplerState, d.cfg.Shards)
	d.mgs = make([]*misragries.State, d.cfg.Shards)
	var sum int64
	for j := 0; j < d.cfg.Shards; j++ {
		d.pools[j] = wire.GSamplerStateR(r)
		if r.Bool() {
			mg := wire.MGStateR(r)
			d.mgs[j] = &mg
		}
		if r.Err() != nil {
			return d, fmt.Errorf("shard: %w", r.Err())
		}
		// Shape checks before the constructors allocate anything: the
		// decoded counts are input-bounded, the spec-derived sizes must
		// match them.
		if d.pools[j].GroupSize != trials || len(d.pools[j].Insts) != trials*d.cfg.Queries {
			return d, fmt.Errorf("shard %d: pool shape (%d×%d) does not match spec (%d×%d)",
				j, d.pools[j].GroupSize, len(d.pools[j].Insts), trials, trials*d.cfg.Queries)
		}
		needMG := d.spec.kind == coordLp && d.spec.p > 1
		if needMG != (d.mgs[j] != nil) {
			return d, fmt.Errorf("shard %d: normalizer presence mismatch", j)
		}
		if needMG {
			if want := core.LpMGWidth(d.spec.p, d.spec.n); d.mgs[j].K != want {
				return d, fmt.Errorf("shard %d: normalizer width %d, spec needs %d",
					j, d.mgs[j].K, want)
			}
		}
		sum += d.pools[j].T
	}
	if err := r.Done(); err != nil {
		return d, fmt.Errorf("shard: %w", err)
	}
	// Post-drain invariant: every routed update lives in some pool.
	if sum != d.total {
		return d, fmt.Errorf("shard: pool lengths sum to %d, coordinator total is %d", sum, d.total)
	}
	return d, nil
}

// validateCoordinatorHead sanity-checks the spec and config and
// returns the spec-derived per-shard trial budget.
func validateCoordinatorHead(d decodedCoordinator) (int, error) {
	s := d.spec
	if !(s.delta > 0 && s.delta < 1) {
		return 0, fmt.Errorf("shard: delta %v outside (0,1)", s.delta)
	}
	if d.cfg.Shards < 1 || d.cfg.Shards > maxShards {
		return 0, fmt.Errorf("shard: shard count %d out of range", d.cfg.Shards)
	}
	if d.cfg.Route != RouteHash && d.cfg.Route != RouteRoundRobin {
		return 0, fmt.Errorf("shard: unknown route %d", d.cfg.Route)
	}
	if d.cfg.BatchSize < 1 || d.cfg.QueueDepth < 1 || d.cfg.Queries < 1 {
		return 0, fmt.Errorf("shard: invalid config %+v", d.cfg)
	}
	// Allocation guard: build() sizes per-shard routing buffers and
	// channels from the Config, so a hostile snapshot must not be able
	// to command allocations unbounded by its own byte length.
	if d.cfg.BatchSize > maxBatchSize || d.cfg.QueueDepth > maxQueueDepth ||
		d.cfg.Queries > maxQueries {
		return 0, fmt.Errorf("shard: config batch size %d / queue depth %d / queries %d out of range",
			d.cfg.BatchSize, d.cfg.QueueDepth, d.cfg.Queries)
	}
	if int64(d.cfg.Shards)*int64(d.cfg.BatchSize) > 1<<24 {
		return 0, fmt.Errorf("shard: %d shards × batch size %d exceeds the restore allocation budget",
			d.cfg.Shards, d.cfg.BatchSize)
	}
	if d.rr >= d.cfg.Shards {
		return 0, fmt.Errorf("shard: round-robin cursor %d outside %d shards", d.rr, d.cfg.Shards)
	}
	if d.total < 0 {
		return 0, fmt.Errorf("shard: negative total %d", d.total)
	}
	switch s.kind {
	case coordMeasure:
		if s.m < 1 {
			return 0, fmt.Errorf("shard: planned length %d out of range", s.m)
		}
		g, err := sample.MeasureFromSpec(s.measure, s.tau)
		if err != nil {
			return 0, err
		}
		return core.InstancesForMeasure(g, s.m, s.delta), nil
	case coordLp:
		if !(s.p > 0) || math.IsInf(s.p, 0) {
			return 0, fmt.Errorf("shard: p %v not a finite positive value", s.p)
		}
		if s.n < 1 || s.m < 1 {
			return 0, fmt.Errorf("shard: universe %d / planned length %d out of range", s.n, s.m)
		}
		if s.p > 1 && s.n > math.MaxInt32 {
			return 0, fmt.Errorf("shard: universe %d too large for the p>1 normalizer", s.n)
		}
		return core.LpPoolSize(s.p, s.n, s.m, s.delta), nil
	}
	return 0, fmt.Errorf("shard: unknown coordinator kind %d", s.kind)
}
