package shard_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/sample/shard"
	"repro/sample/snap"
)

// TestCoordinatorDeltaReproducesFull: folding a coordinator delta
// chain must reproduce the live coordinator's full snapshot
// bit-for-bit, and a restored-from-chain coordinator must answer
// exactly like the original.
func TestCoordinatorDeltaReproducesFull(t *testing.T) {
	stream := make([]int64, 900)
	for i := range stream {
		stream[i] = int64((i*i*13 + i) % 127)
	}
	c := shard.NewLp(2, 128, int64(len(stream))+1, 0.2, 5, shard.Config{Shards: 2, Queries: 2})
	defer c.Close()
	c.ProcessBatch(stream[:300])
	base, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	c.ProcessBatch(stream[300:600])
	d1, err := c.SnapshotDelta(base)
	if err != nil {
		t.Fatalf("SnapshotDelta: %v", err)
	}
	mid, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := shard.ApplyCoordinatorDelta(base, d1); err != nil || !bytes.Equal(got, mid) {
		t.Fatalf("ApplyCoordinatorDelta diverges: err=%v equal=%v", err, bytes.Equal(got, mid))
	}
	c.ProcessBatch(stream[600:])
	d2, err := c.SnapshotDelta(mid)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	folded, err := shard.ResolveCoordinatorChain(base, d1, d2)
	if err != nil {
		t.Fatalf("ResolveCoordinatorChain: %v", err)
	}
	if !bytes.Equal(folded, final) {
		t.Fatalf("folded chain (%d bytes) diverges from the final snapshot (%d bytes)",
			len(folded), len(final))
	}
	if len(d1) >= len(mid) {
		t.Fatalf("delta (%d bytes) not smaller than the full snapshot (%d bytes)", len(d1), len(mid))
	}

	// Wrong-base application fails with the typed sentinel.
	if _, err := shard.ApplyCoordinatorDelta(base, d2); !errors.Is(err, snap.ErrDeltaBaseMismatch) {
		t.Fatalf("wrong base: %v, want snap.ErrDeltaBaseMismatch", err)
	}

	// The folded checkpoint restores a coordinator that answers exactly
	// like the live one.
	restored, err := shard.RestoreCoordinator(folded)
	if err != nil {
		t.Fatalf("RestoreCoordinator: %v", err)
	}
	defer restored.Close()
	for q := 0; q < 3; q++ {
		want, wn := c.SampleK(2)
		got, gn := restored.SampleK(2)
		if gn != wn || len(got) != len(want) {
			t.Fatalf("query %d: restored %d draws, live %d", q, gn, wn)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d draw %d: %+v vs %+v", q, i, got[i], want[i])
			}
		}
	}
}
