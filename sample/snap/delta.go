package snap

// Wire format v2: delta snapshots. A v1 snapshot is self-contained; a
// v2 snapshot encodes only the state changed since a *base* snapshot,
// identified by its content-addressed Name:
//
//	magic   "TPSN"                      4 bytes
//	version 2                           1 byte
//	kind    sample.Kind                 1 byte (must match the base)
//	base    snap.Name of the base       length-prefixed string
//	delta   kind-specific layer deltas  see internal/wire delta frames
//
// The constructor spec is deliberately NOT re-encoded: a delta only
// ever applies to a snapshot of the same sampler (EncodeDelta refuses
// anything else), so the base carries the spec and the name check
// makes a mismatched application fail loudly (ErrDeltaBaseMismatch)
// instead of decoding garbage. v2 never replaces v1 — per the §2.5
// versioning rule the v1 encoder/decoder stays the default, its golden
// files stay pinned, and every v2 consumer resolves down to v1 bytes:
// ApplyDelta(base, delta) returns the successor's *full v1 encoding*,
// bit-for-bit equal to what Snapshot would have produced on the live
// sampler. That equality (pinned by TestClaimDeltaChainEquivalence) is
// what makes chains compose: Resolve folds full + delta* left to
// right, re-deriving each intermediate snapshot's exact bytes — and
// therefore its Name, so every link is integrity-checked by the same
// content address the serving layer caches on.
//
// Determinism carries over: one (base, current) pair has exactly one
// delta encoding (op lists strictly ascending, enforced by the
// readers), so deltas are content-addressable too — Name tags them
// with a "-delta" label suffix.

import (
	"errors"
	"fmt"

	"repro/internal/wire"
	"repro/sample"
)

// ErrDeltaBaseMismatch is returned (wrapped, with both names in the
// message) when a delta's recorded base name does not match the
// snapshot it is being applied to. Chain resolvers match it with
// errors.Is to distinguish "wrong base" (a gap or reorder in the
// chain) from a torn or corrupt delta (any other decode error).
var ErrDeltaBaseMismatch = errors.New("snap: delta does not apply to this base snapshot")

// IsDelta reports whether data carries wire format v2 (a delta
// snapshot of either flavor — sampler kinds or a shard coordinator).
// It reads only the preamble; invalid bytes report false.
func IsDelta(data []byte) bool {
	v, _, err := wire.Sniff(data)
	return err == nil && v == wire.FormatVersionDelta
}

// DeltaBase returns the content-addressed name of the base snapshot a
// v2 delta applies to.
func DeltaBase(data []byte) (string, error) {
	r := wire.NewReader(data)
	_, base := wire.DeltaHeader(r)
	if err := r.Err(); err != nil {
		return "", fmt.Errorf("snap: %w", err)
	}
	return base, nil
}

// SnapshotDelta encodes a sampler's current state as a v2 delta
// against base — full v1 snapshot bytes previously produced by
// Snapshot for the *same* sampler (an earlier checkpoint of it). The
// sampler surface is the same as Snapshot's; coordinators have
// shard.Coordinator.SnapshotDelta.
func SnapshotDelta(base []byte, s sample.Sampler) ([]byte, error) {
	st, ok := s.(sample.Stateful)
	if !ok {
		return nil, fmt.Errorf("snap: %T does not support snapshots", s)
	}
	cur, err := st.SnapState()
	if err != nil {
		return nil, err
	}
	baseSt, err := decodeDeltaBase(base)
	if err != nil {
		return nil, err
	}
	return encodeDelta(base, baseSt, cur)
}

// EncodeDelta computes the v2 delta that turns the full v1 snapshot
// base into the full v1 snapshot cur. Both must encode the same
// sampler (identical constructor spec); ApplyDelta(base, result)
// reproduces cur bit-for-bit.
func EncodeDelta(base, cur []byte) ([]byte, error) {
	baseSt, err := decodeDeltaBase(base)
	if err != nil {
		return nil, err
	}
	curSt, err := Decode(cur)
	if err != nil {
		return nil, fmt.Errorf("snap: delta target: %w", err)
	}
	return encodeDelta(base, baseSt, curSt)
}

// decodeDeltaBase decodes a delta's base snapshot, steering
// coordinator bytes to their own codec.
func decodeDeltaBase(base []byte) (sample.State, error) {
	if _, kind, err := wire.Sniff(base); err == nil && kind == wire.KindCoordinator {
		return sample.State{}, fmt.Errorf("snap: coordinator snapshots delta via sample/shard (EncodeCoordinatorDelta)")
	}
	st, err := Decode(base)
	if err != nil {
		return sample.State{}, fmt.Errorf("snap: delta base: %w", err)
	}
	return st, nil
}

func encodeDelta(base []byte, baseSt, curSt sample.State) ([]byte, error) {
	if curSt.Spec != baseSt.Spec {
		return nil, fmt.Errorf("snap: delta base is a different sampler (%+v vs %+v)",
			baseSt.Spec, curSt.Spec)
	}
	w := &wire.Writer{}
	wire.PutDeltaHeader(w, uint8(curSt.Spec.Kind), Name(base))
	if err := putDeltaPayload(w, baseSt, curSt); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// ApplyDelta folds one v2 delta onto its base, returning the successor
// snapshot's full v1 bytes — bit-for-bit what Snapshot would have
// produced on the live sampler at the later checkpoint. The delta must
// name this exact base (ErrDeltaBaseMismatch otherwise). Hostile
// deltas error and never panic; semantic invariants of the result are
// re-validated wherever the bytes are next restored.
func ApplyDelta(base, delta []byte) ([]byte, error) {
	baseSt, err := decodeDeltaBase(base)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(delta)
	kind, bname := wire.DeltaHeader(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	if sample.Kind(kind) != baseSt.Spec.Kind {
		return nil, fmt.Errorf("snap: delta kind %v does not match base kind %v",
			sample.Kind(kind), baseSt.Spec.Kind)
	}
	if have := Name(base); bname != have {
		return nil, fmt.Errorf("%w: delta wants base %s, applied to %s",
			ErrDeltaBaseMismatch, bname, have)
	}
	st, err := deltaPayloadR(r, baseSt)
	if err != nil {
		return nil, err
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	return Encode(st)
}

// RestoreDelta rebuilds a working sampler from a base snapshot plus
// one delta — Restore over ApplyDelta. The restored sampler continues
// the delta-checkpointed sampler's update and query streams
// bit-for-bit.
func RestoreDelta(base, delta []byte) (sample.Sampler, error) {
	full, err := ApplyDelta(base, delta)
	if err != nil {
		return nil, err
	}
	return Restore(full)
}

// Resolve folds a snapshot chain — one full v1 snapshot followed by
// zero or more v2 deltas in application order — back into the final
// state's full v1 bytes. Each link is verified against the
// content-addressed name of the state it extends, so a gap, reorder or
// cross-sampler mixup fails with ErrDeltaBaseMismatch at the offending
// link. Coordinator chains resolve via shard.ResolveCoordinatorChain.
func Resolve(full []byte, deltas ...[]byte) ([]byte, error) {
	if v, _, err := wire.Sniff(full); err != nil || v != wire.FormatVersion {
		return nil, fmt.Errorf("snap: chain must start with a full v1 snapshot")
	}
	cur := full
	for i, d := range deltas {
		next, err := ApplyDelta(cur, d)
		if err != nil {
			return nil, fmt.Errorf("snap: resolve delta %d of %d: %w", i+1, len(deltas), err)
		}
		cur = next
	}
	return cur, nil
}

// putDeltaPayload writes the kind-specific delta frames: each layer's
// Diff against the base's corresponding layer state.
func putDeltaPayload(w *wire.Writer, base, cur sample.State) error {
	missing := func() error { return missingPayload(cur.Spec.Kind) }
	switch cur.Spec.Kind {
	case sample.KindL1, sample.KindMEstimator:
		if cur.G == nil || base.G == nil {
			return missing()
		}
		d, err := cur.G.Diff(*base.G)
		if err != nil {
			return err
		}
		wire.PutGSamplerDelta(w, d)
	case sample.KindLp:
		if cur.Lp == nil || base.Lp == nil {
			return missing()
		}
		d, err := cur.Lp.Diff(*base.Lp)
		if err != nil {
			return err
		}
		wire.PutLpSamplerDelta(w, d)
	case sample.KindF0:
		if cur.F0Pool == nil || base.F0Pool == nil {
			return missing()
		}
		d, err := cur.F0Pool.Diff(*base.F0Pool)
		if err != nil {
			return err
		}
		wire.PutF0PoolDelta(w, d)
	case sample.KindF0Oracle:
		// Seven scalar words: re-shipped whole, smaller than any diff.
		if cur.F0Oracle == nil {
			return missing()
		}
		wire.PutOracleState(w, *cur.F0Oracle)
	case sample.KindTukey:
		if cur.Tukey == nil || base.Tukey == nil {
			return missing()
		}
		d, err := cur.Tukey.Diff(*base.Tukey)
		if err != nil {
			return err
		}
		wire.PutTukeyDelta(w, d)
	case sample.KindWindowMEstimator:
		if cur.WindowG == nil || base.WindowG == nil {
			return missing()
		}
		d, err := cur.WindowG.Diff(*base.WindowG)
		if err != nil {
			return err
		}
		wire.PutWindowGDelta(w, d)
	case sample.KindWindowLp:
		if cur.WindowLp == nil || base.WindowLp == nil {
			return missing()
		}
		d, err := cur.WindowLp.Diff(*base.WindowLp)
		if err != nil {
			return err
		}
		wire.PutWindowLpDelta(w, d)
	case sample.KindWindowF0:
		if cur.F0WindowPool == nil || base.F0WindowPool == nil {
			return missing()
		}
		d, err := cur.F0WindowPool.Diff(*base.F0WindowPool)
		if err != nil {
			return err
		}
		wire.PutF0WindowPoolDelta(w, d)
	case sample.KindWindowTukey:
		if cur.WindowTukey == nil || base.WindowTukey == nil {
			return missing()
		}
		d, err := cur.WindowTukey.Diff(*base.WindowTukey)
		if err != nil {
			return err
		}
		wire.PutWindowTukeyDelta(w, d)
	case sample.KindRandOrderL2:
		// The state is a bounded reservoir plus a few clock words:
		// re-shipped whole, like the oracle (no diff frame to maintain).
		if cur.RandOrderL2 == nil {
			return missing()
		}
		wire.PutRandOrderL2State(w, *cur.RandOrderL2)
	case sample.KindRandOrderLp:
		if cur.RandOrderLp == nil {
			return missing()
		}
		wire.PutRandOrderLpState(w, *cur.RandOrderLp)
	case sample.KindMatrixRowsL1, sample.KindMatrixRowsL2:
		if cur.Matrix == nil {
			return missing()
		}
		wire.PutMatrixState(w, *cur.Matrix)
	case sample.KindTurnstileF0:
		if cur.TurnstilePool == nil {
			return missing()
		}
		wire.PutTurnstilePoolState(w, *cur.TurnstilePool)
	case sample.KindMultipassLp:
		if cur.Multipass == nil {
			return missing()
		}
		wire.PutMultipassState(w, cur.Multipass.Updates,
			cur.Multipass.Passes, cur.Multipass.PeakWords)
	default:
		return fmt.Errorf("snap: unknown sampler kind %v", cur.Spec.Kind)
	}
	return nil
}

// deltaPayloadR reads the kind-specific delta frames and applies them
// to the base's layer states.
func deltaPayloadR(r *wire.Reader, base sample.State) (sample.State, error) {
	out := sample.State{Spec: base.Spec}
	fail := func(err error) (sample.State, error) {
		return sample.State{}, fmt.Errorf("snap: %v delta: %w", base.Spec.Kind, err)
	}
	missing := func() (sample.State, error) {
		return sample.State{}, missingPayload(base.Spec.Kind)
	}
	switch base.Spec.Kind {
	case sample.KindL1, sample.KindMEstimator:
		if base.G == nil {
			return missing()
		}
		d := wire.GSamplerDeltaR(r)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		g, err := d.Apply(*base.G)
		if err != nil {
			return fail(err)
		}
		out.G = &g
	case sample.KindLp:
		if base.Lp == nil {
			return missing()
		}
		d := wire.LpSamplerDeltaR(r)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		lp, err := d.Apply(*base.Lp)
		if err != nil {
			return fail(err)
		}
		out.Lp = &lp
	case sample.KindF0:
		if base.F0Pool == nil {
			return missing()
		}
		d := wire.F0PoolDeltaR(r)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		p, err := d.Apply(*base.F0Pool)
		if err != nil {
			return fail(err)
		}
		out.F0Pool = &p
	case sample.KindF0Oracle:
		o := wire.OracleStateR(r)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		out.F0Oracle = &o
	case sample.KindTukey:
		if base.Tukey == nil {
			return missing()
		}
		d := wire.TukeyDeltaR(r)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		t, err := d.Apply(*base.Tukey)
		if err != nil {
			return fail(err)
		}
		out.Tukey = &t
	case sample.KindWindowMEstimator:
		if base.WindowG == nil {
			return missing()
		}
		d := wire.WindowGDeltaR(r)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		g, err := d.Apply(*base.WindowG)
		if err != nil {
			return fail(err)
		}
		out.WindowG = &g
	case sample.KindWindowLp:
		if base.WindowLp == nil {
			return missing()
		}
		d := wire.WindowLpDeltaR(r)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		lp, err := d.Apply(*base.WindowLp)
		if err != nil {
			return fail(err)
		}
		out.WindowLp = &lp
	case sample.KindWindowF0:
		if base.F0WindowPool == nil {
			return missing()
		}
		d := wire.F0WindowPoolDeltaR(r)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		p, err := d.Apply(*base.F0WindowPool)
		if err != nil {
			return fail(err)
		}
		out.F0WindowPool = &p
	case sample.KindWindowTukey:
		if base.WindowTukey == nil {
			return missing()
		}
		d := wire.WindowTukeyDeltaR(r)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		t, err := d.Apply(*base.WindowTukey)
		if err != nil {
			return fail(err)
		}
		out.WindowTukey = &t
	case sample.KindRandOrderL2:
		ro := wire.RandOrderL2StateR(r)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		out.RandOrderL2 = &ro
	case sample.KindRandOrderLp:
		ro := wire.RandOrderLpStateR(r)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		out.RandOrderLp = &ro
	case sample.KindMatrixRowsL1, sample.KindMatrixRowsL2:
		m := wire.MatrixStateR(r)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		out.Matrix = &m
	case sample.KindTurnstileF0:
		p := wire.TurnstilePoolStateR(r)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		out.TurnstilePool = &p
	case sample.KindMultipassLp:
		mp := sample.MultipassState{}
		mp.Updates, mp.Passes, mp.PeakWords = wire.MultipassStateR(r)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		out.Multipass = &mp
	default:
		return sample.State{}, fmt.Errorf("snap: unknown sampler kind %v", base.Spec.Kind)
	}
	return out, nil
}
