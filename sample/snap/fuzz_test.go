package snap_test

import (
	"bytes"
	"testing"

	"repro/sample"
	"repro/sample/shard"
	"repro/sample/snap"
)

// fuzzSamplers builds the fixed sampler battery the fuzz corpus and
// the delta-application bases are derived from. Everything is seeded,
// so the bases rebuilt inside the fuzz target are byte-identical to
// the ones the seed deltas were diffed against — which is what lets a
// mutated delta get past the base-name check and into the payload
// readers.
func fuzzSamplers() []sample.Sampler {
	return []sample.Sampler{
		sample.NewL1(0.25, 1, sample.Queries(2)),
		sample.NewLp(0.5, 16, 64, 0.25, 2),
		sample.NewLp(2, 16, 64, 0.25, 3),
		sample.NewMEstimator(sample.MeasureL1L2(), 64, 0.25, 4),
		sample.NewF0(16, 0.25, 5),
		sample.NewF0Oracle(6),
		sample.NewTukey(2, 16, 0.25, 7),
		sample.NewWindowMEstimator(sample.MeasureHuber(2), 8, 0.25, 8),
		sample.NewWindowLp(1.5, 16, 8, 0.25, true, 9),
		sample.NewWindowF0(16, 8, 2, 0.25, 10),
		sample.NewWindowTukey(2, 16, 8, 0.25, 11),
		// Single-stream kinds (matrix columns 4: every fuzzStream item
		// packs to a valid (row, col); non-negative items are turnstile
		// insertions).
		sample.NewRandomOrderL2(8, 4, 13),
		sample.NewRandomOrderLp(3, 8, 14),
		sample.NewMatrixRowsL1(4, 64, 0.25, 15).Stream(),
		sample.NewMatrixRowsL2(4, 64, 0.25, 16).Stream(),
		sample.NewTurnstileF0(16, 0.25, 17).Stream(),
		sample.NewMultipassLp(2, 0.5, 0.25, 18).Stream(16),
	}
}

var fuzzStream = []int64{3, 1, 4, 1, 5, 9, 2, 6}

// fuzzBases returns every fixed base snapshot the delta path is fuzzed
// against: one per sampler kind (checkpointed after fuzzStream) plus a
// coordinator checkpoint.
func fuzzBases() [][]byte {
	var bases [][]byte
	for _, s := range fuzzSamplers() {
		s.ProcessBatch(fuzzStream)
		if data, err := snap.Snapshot(s); err == nil {
			bases = append(bases, data)
		}
	}
	c := shard.NewL1(0.25, 12, shard.Config{Shards: 2})
	defer c.Close()
	c.ProcessBatch(fuzzStream)
	if data, err := c.Snapshot(); err == nil {
		bases = append(bases, data)
	}
	return bases
}

// FuzzSnapDecode hammers the full restore path — header, spec, layer
// states, constructor re-run, invariant validation — and, since wire
// format v2, the delta path — delta header, per-layer delta frames,
// Apply merges, chain resolution — with corrupted, truncated and
// adversarial inputs. The contract under fuzz: error, never panic,
// never allocate unboundedly. Successful restores must yield a sampler
// whose cheap read paths work, and a successfully applied delta must
// yield bytes the v1 decoder accepts.
func FuzzSnapDecode(f *testing.F) {
	// Seed with valid snapshots of every kind so the fuzzer starts deep
	// inside the format instead of bouncing off the magic check.
	for _, s := range fuzzSamplers() {
		s.ProcessBatch(fuzzStream)
		if data, err := snap.Snapshot(s); err == nil {
			f.Add(data)
		}
	}
	// v2 corpus: a valid delta per kind (diffed against the fuzzBases
	// snapshot, extended by a short suffix), a truncated chain link, and
	// a delta whose base name mismatches every base.
	suffix := []int64{5, 3, 5}
	for _, s := range fuzzSamplers() {
		s.ProcessBatch(fuzzStream)
		base, err := snap.Snapshot(s)
		if err != nil {
			continue
		}
		s.ProcessBatch(suffix)
		d, err := snap.SnapshotDelta(base, s)
		if err != nil {
			continue
		}
		f.Add(d)
		f.Add(d[:len(d)*2/3]) // truncated mid-frame
		// Mismatched base: re-diff against the post-suffix state, whose
		// name no fuzz base carries.
		if cur, err := snap.Snapshot(s); err == nil {
			s.ProcessBatch(suffix)
			if d2, err := snap.SnapshotDelta(cur, s); err == nil {
				f.Add(d2)
			}
		}
	}
	// Coordinator flavor, same three shapes.
	func() {
		c := shard.NewL1(0.25, 12, shard.Config{Shards: 2})
		defer c.Close()
		c.ProcessBatch(fuzzStream)
		base, err := c.Snapshot()
		if err != nil {
			return
		}
		c.ProcessBatch(suffix)
		if d, err := c.SnapshotDelta(base); err == nil {
			f.Add(d)
			f.Add(d[:len(d)/2])
		}
	}()
	// v1 hostile shapes per kind: truncated bodies (counts that survive
	// the header but outrun the buffer) and kind-mismatch mutants (one
	// kind's frame under another kind's payload reader — the allocation
	// guards and size checks must catch every one).
	for _, s := range fuzzSamplers() {
		s.ProcessBatch(fuzzStream)
		data, err := snap.Snapshot(s)
		if err != nil {
			continue
		}
		f.Add(data[:len(data)*2/3])
		for _, k := range []sample.Kind{sample.KindTurnstileF0, sample.KindMatrixRowsL1, sample.KindRandOrderLp} {
			swap := append([]byte(nil), data...)
			swap[5] = byte(k) // kind byte: magic(4) + version(1)
			f.Add(swap)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("TPSN"))
	f.Add([]byte("TPSN\x02"))

	bases := fuzzBases()
	f.Fuzz(func(t *testing.T, data []byte) {
		if snap.IsDelta(data) {
			// The delta path: application against every fixed base must
			// error or produce v1 bytes — never panic. (The base-name
			// check screens most mutants; the seeds carry matching names
			// so payload mutations get through.)
			for _, base := range bases {
				full, err := applyAny(base, data)
				if err != nil {
					continue
				}
				if !bytes.Equal(full, base) && len(full) == 0 {
					t.Fatalf("applied delta produced empty bytes")
				}
				if shard.IsCoordinatorSnapshot(full) {
					if _, err := shard.RestoreCoordinator(full); err == nil {
						break
					}
					continue
				}
				if s, err := snap.Restore(full); err == nil {
					_ = s.StreamLen()
					_ = s.BitsUsed()
				}
			}
			return
		}
		s, err := snap.Restore(data)
		if err != nil {
			return
		}
		// A successful restore must produce a coherent sampler.
		if s.StreamLen() < 0 {
			t.Fatalf("restored sampler reports negative stream length")
		}
		_ = s.BitsUsed()
		// Re-snapshotting a restored sampler must succeed: restore and
		// export are inverse on the valid subset of inputs — and the
		// sampler must accept a self-delta (the empty diff).
		full, err := snap.Snapshot(s)
		if err != nil {
			t.Fatalf("restored sampler does not re-snapshot: %v", err)
		}
		if d, err := snap.SnapshotDelta(full, s); err != nil {
			t.Fatalf("restored sampler does not self-delta: %v", err)
		} else if folded, err := snap.ApplyDelta(full, d); err != nil || !bytes.Equal(folded, full) {
			t.Fatalf("empty self-delta does not fold back: %v", err)
		}
		// Merging a snapshot with itself must never panic either; it may
		// legitimately error (window kinds, seed rules).
		if m, err := snap.Merge(1, data, data); err == nil {
			_ = m.StreamLen()
		}
	})
}

// applyAny dispatches delta application on the base's kind, mirroring
// the serving layer's dispatch.
func applyAny(base, delta []byte) ([]byte, error) {
	if shard.IsCoordinatorSnapshot(base) {
		return shard.ApplyCoordinatorDelta(base, delta)
	}
	return snap.ApplyDelta(base, delta)
}
