package snap_test

import (
	"testing"

	"repro/sample"
	"repro/sample/snap"
)

// FuzzSnapDecode hammers the full restore path — header, spec, layer
// states, constructor re-run, invariant validation — with corrupted,
// truncated and adversarial inputs. The contract under fuzz: error,
// never panic, never allocate unboundedly. Successful restores must
// yield a sampler whose cheap read paths work.
func FuzzSnapDecode(f *testing.F) {
	// Seed with valid snapshots of every kind so the fuzzer starts deep
	// inside the format instead of bouncing off the magic check.
	stream := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	seeds := []sample.Sampler{
		sample.NewL1(0.25, 1, sample.Queries(2)),
		sample.NewLp(0.5, 16, 64, 0.25, 2),
		sample.NewLp(2, 16, 64, 0.25, 3),
		sample.NewMEstimator(sample.MeasureL1L2(), 64, 0.25, 4),
		sample.NewF0(16, 0.25, 5),
		sample.NewF0Oracle(6),
		sample.NewTukey(2, 16, 0.25, 7),
		sample.NewWindowMEstimator(sample.MeasureHuber(2), 8, 0.25, 8),
		sample.NewWindowLp(1.5, 16, 8, 0.25, true, 9),
		sample.NewWindowF0(16, 8, 2, 0.25, 10),
		sample.NewWindowTukey(2, 16, 8, 0.25, 11),
	}
	for _, s := range seeds {
		s.ProcessBatch(stream)
		if data, err := snap.Snapshot(s); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("TPSN"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := snap.Restore(data)
		if err != nil {
			return
		}
		// A successful restore must produce a coherent sampler.
		if s.StreamLen() < 0 {
			t.Fatalf("restored sampler reports negative stream length")
		}
		_ = s.BitsUsed()
		// Re-snapshotting a restored sampler must succeed: restore and
		// export are inverse on the valid subset of inputs.
		if _, err := snap.Snapshot(s); err != nil {
			t.Fatalf("restored sampler does not re-snapshot: %v", err)
		}
		// Merging a snapshot with itself must never panic either; it may
		// legitimately error (window kinds, seed rules).
		if m, err := snap.Merge(1, data, data); err == nil {
			_ = m.StreamLen()
		}
	})
}
