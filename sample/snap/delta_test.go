package snap_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/sample"
	"repro/sample/snap"
)

// deltaKinds is the full snapshot surface the delta codec must cover.
func deltaKinds() map[string]func(seed uint64) sample.Sampler {
	const (
		n     = int64(64)
		w     = int64(32)
		m     = int64(4097)
		delta = 0.25
	)
	return map[string]func(seed uint64) sample.Sampler{
		"l1":           func(s uint64) sample.Sampler { return sample.NewL1(delta, s, sample.Queries(2)) },
		"lp0.5":        func(s uint64) sample.Sampler { return sample.NewLp(0.5, n, m, delta, s) },
		"lp2":          func(s uint64) sample.Sampler { return sample.NewLp(2, n, m, delta, s) },
		"mest-l1l2":    func(s uint64) sample.Sampler { return sample.NewMEstimator(sample.MeasureL1L2(), m, delta, s) },
		"f0":           func(s uint64) sample.Sampler { return sample.NewF0(n, delta, s) },
		"f0-oracle":    func(s uint64) sample.Sampler { return sample.NewF0Oracle(s) },
		"tukey":        func(s uint64) sample.Sampler { return sample.NewTukey(2, n, delta, s) },
		"window-mest":  func(s uint64) sample.Sampler { return sample.NewWindowMEstimator(sample.MeasureHuber(2), w, delta, s) },
		"window-lp":    func(s uint64) sample.Sampler { return sample.NewWindowLp(1.5, n, w, delta, true, s) },
		"window-f0":    func(s uint64) sample.Sampler { return sample.NewWindowF0(n, w, 3, delta, s) },
		"window-tukey": func(s uint64) sample.Sampler { return sample.NewWindowTukey(2, n, w, delta, s) },
	}
}

// TestDeltaApplyReproducesFull: for every kind, ApplyDelta(base,
// SnapshotDelta(base, s)) must equal the full v1 snapshot bit-for-bit,
// including across a two-link chain, and deltas must be smaller than
// fulls on a churn that touches a fraction of the state.
func TestDeltaApplyReproducesFull(t *testing.T) {
	stream := make([]int64, 600)
	for i := range stream {
		stream[i] = int64((i*i*31 + i) % 97)
	}
	for name, mk := range deltaKinds() {
		t.Run(name, func(t *testing.T) {
			s := mk(7)
			s.ProcessBatch(stream[:200])
			base, err := snap.Snapshot(s)
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			s.ProcessBatch(stream[200:400])
			d1, err := snap.SnapshotDelta(base, s)
			if err != nil {
				t.Fatalf("SnapshotDelta: %v", err)
			}
			full1, err := snap.Snapshot(s)
			if err != nil {
				t.Fatal(err)
			}
			got1, err := snap.ApplyDelta(base, d1)
			if err != nil {
				t.Fatalf("ApplyDelta: %v", err)
			}
			if !bytes.Equal(got1, full1) {
				t.Fatalf("ApplyDelta diverges from the full snapshot (%d vs %d bytes)", len(got1), len(full1))
			}
			s.ProcessBatch(stream[400:])
			d2, err := snap.SnapshotDelta(full1, s)
			if err != nil {
				t.Fatal(err)
			}
			full2, err := snap.Snapshot(s)
			if err != nil {
				t.Fatal(err)
			}
			folded, err := snap.Resolve(base, d1, d2)
			if err != nil {
				t.Fatalf("Resolve: %v", err)
			}
			if !bytes.Equal(folded, full2) {
				t.Fatalf("Resolve(full, d1, d2) diverges from the final full snapshot")
			}
			if !snap.IsDelta(d1) || snap.IsDelta(full1) {
				t.Fatalf("IsDelta misclassifies")
			}
			if b, err := snap.DeltaBase(d2); err != nil || b != snap.Name(full1) {
				t.Fatalf("DeltaBase = %q, %v; want %q", b, err, snap.Name(full1))
			}
		})
	}
}

// TestDeltaBaseMismatch: a delta applied to the wrong base must fail
// with the typed sentinel, not decode garbage.
func TestDeltaBaseMismatch(t *testing.T) {
	s := sample.NewL1(0.25, 3)
	s.ProcessBatch([]int64{1, 2, 3, 4, 5, 6, 7, 8})
	base, _ := snap.Snapshot(s)
	s.ProcessBatch([]int64{9, 10, 11})
	mid, _ := snap.Snapshot(s)
	s.ProcessBatch([]int64{12, 13})
	d, err := snap.SnapshotDelta(mid, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.ApplyDelta(base, d); !errors.Is(err, snap.ErrDeltaBaseMismatch) {
		t.Fatalf("ApplyDelta on the wrong base: %v, want ErrDeltaBaseMismatch", err)
	}
	if _, err := snap.Resolve(base, d); !errors.Is(err, snap.ErrDeltaBaseMismatch) {
		t.Fatalf("Resolve with a gap: %v, want ErrDeltaBaseMismatch", err)
	}
	// A chain must open with a full snapshot.
	if _, err := snap.Resolve(d); err == nil {
		t.Fatal("Resolve accepted a chain starting with a delta")
	}
}

// TestDeltaRestoreContinues: RestoreDelta must hand back a sampler that
// continues the original's streams exactly (spot check; the every-kind
// continuation claim lives in TestClaimDeltaChainEquivalence).
func TestDeltaRestoreContinues(t *testing.T) {
	mk := func() sample.Sampler { return sample.NewLp(2, 64, 4097, 0.25, 11, sample.Queries(2)) }
	a, b := mk(), mk()
	stream := make([]int64, 300)
	for i := range stream {
		stream[i] = int64((i * 7) % 61)
	}
	a.ProcessBatch(stream[:100])
	b.ProcessBatch(stream[:100])
	base, err := snap.Snapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	a.ProcessBatch(stream[100:200])
	b.ProcessBatch(stream[100:200])
	d, err := snap.SnapshotDelta(base, a)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := snap.RestoreDelta(base, d)
	if err != nil {
		t.Fatalf("RestoreDelta: %v", err)
	}
	restored.ProcessBatch(stream[200:])
	b.ProcessBatch(stream[200:])
	for q := 0; q < 4; q++ {
		got, gn := restored.SampleK(2)
		want, wn := b.SampleK(2)
		if gn != wn || len(got) != len(want) {
			t.Fatalf("query %d: restored %d draws, reference %d", q, gn, wn)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d draw %d: %+v vs %+v", q, i, got[i], want[i])
			}
		}
	}
}
