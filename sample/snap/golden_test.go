package snap_test

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/sample"
	"repro/sample/snap"
)

var updateGolden = flag.Bool("update", false, "rewrite the wire-format golden files")

// goldenSamplers are small fixed configurations whose encodings pin
// wire format v1. If an intentional format change lands, bump
// wire.FormatVersion, keep a decoder for v1, and regenerate with
// `go test ./sample/snap -run TestGolden -update`.
func goldenSamplers() map[string]sample.Sampler {
	stream := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}
	mk := func(s sample.Sampler) sample.Sampler {
		s.ProcessBatch(stream)
		return s
	}
	return map[string]sample.Sampler{
		"v1_l1":        mk(sample.NewL1(0.25, 42, sample.Queries(2))),
		"v1_lp2":       mk(sample.NewLp(2, 16, 64, 0.25, 42)),
		"v1_f0":        mk(sample.NewF0(16, 0.25, 42)),
		"v1_window_lp": mk(sample.NewWindowLp(1.5, 16, 8, 0.25, true, 42)),
	}
}

// TestGoldenWireFormat pins the v1 encoding byte-for-byte: any
// accidental change to field order, varint widths, sort order or
// header layout fails here before it ships as a silent format break.
func TestGoldenWireFormat(t *testing.T) {
	for name, s := range goldenSamplers() {
		t.Run(name, func(t *testing.T) {
			data, err := snap.Snapshot(s)
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			path := filepath.Join("testdata", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(hex.EncodeToString(data)+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			want, err := hex.DecodeString(string(bytes.TrimSpace(raw)))
			if err != nil {
				t.Fatalf("corrupt golden file: %v", err)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("wire format v1 changed: %s encodes to %d bytes != golden %d bytes\n got: %x\nwant: %x",
					name, len(data), len(want), data, want)
			}
			// The golden bytes must stay restorable.
			if _, err := snap.Restore(want); err != nil {
				t.Fatalf("golden snapshot no longer restores: %v", err)
			}
		})
	}
}
