package snap_test

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/sample"
	"repro/sample/snap"
)

var updateGolden = flag.Bool("update", false, "rewrite the wire-format golden files")

// goldenSamplers are small fixed configurations whose encodings pin
// wire format v1. If an intentional format change lands, bump
// wire.FormatVersion, keep a decoder for v1, and regenerate with
// `go test ./sample/snap -run TestGolden -update`.
func goldenSamplers() map[string]sample.Sampler {
	stream := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}
	mk := func(s sample.Sampler) sample.Sampler {
		s.ProcessBatch(stream)
		return s
	}
	return map[string]sample.Sampler{
		"v1_l1":           mk(sample.NewL1(0.25, 42, sample.Queries(2))),
		"v1_lp2":          mk(sample.NewLp(2, 16, 64, 0.25, 42)),
		"v1_f0":           mk(sample.NewF0(16, 0.25, 42)),
		"v1_window_lp":    mk(sample.NewWindowLp(1.5, 16, 8, 0.25, true, 42)),
		"v1_randorder_l2": mk(sample.NewRandomOrderL2(8, 4, 42)),
		"v1_randorder_lp": mk(sample.NewRandomOrderLp(3, 8, 42)),
		"v1_matrix_l1":    mk(sample.NewMatrixRowsL1(4, 64, 0.25, 42).Stream()),
		"v1_matrix_l2":    mk(sample.NewMatrixRowsL2(4, 64, 0.25, 42).Stream()),
		"v1_turnstile_f0": mk(sample.NewTurnstileF0(16, 0.25, 42).Stream()),
		"v1_multipass_lp": mk(sample.NewMultipassLp(2, 0.5, 0.25, 42).Stream(16)),
	}
}

// checkGolden pins data against testdata/<name>.golden (or rewrites it
// under -update), returning the pinned bytes.
func checkGolden(t *testing.T, name string, data []byte, what string) []byte {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(hex.EncodeToString(data)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return data
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	want, err := hex.DecodeString(string(bytes.TrimSpace(raw)))
	if err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("%s changed: %s encodes to %d bytes != golden %d bytes\n got: %x\nwant: %x",
			what, name, len(data), len(want), data, want)
	}
	return want
}

// TestGoldenWireFormat pins the v1 encoding byte-for-byte: any
// accidental change to field order, varint widths, sort order or
// header layout fails here before it ships as a silent format break.
func TestGoldenWireFormat(t *testing.T) {
	for name, s := range goldenSamplers() {
		t.Run(name, func(t *testing.T) {
			data, err := snap.Snapshot(s)
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			want := checkGolden(t, name, data, "wire format v1")
			// The golden bytes must stay restorable.
			if _, err := snap.Restore(want); err != nil {
				t.Fatalf("golden snapshot no longer restores: %v", err)
			}
		})
	}
}

// TestGoldenDeltaWireFormat pins the v2 delta encoding byte-for-byte,
// alongside (never instead of) the v1 goldens: the same fixed
// configurations, checkpointed mid-stream and delta'd at the end. The
// pinned delta must keep applying onto the pinned v1-era base to the
// same full snapshot.
func TestGoldenDeltaWireFormat(t *testing.T) {
	suffix := []int64{2, 7, 1, 8, 2, 8, 1, 8}
	for name, s := range goldenSamplers() {
		t.Run(name, func(t *testing.T) {
			base, err := snap.Snapshot(s)
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			s.ProcessBatch(suffix)
			delta, err := snap.SnapshotDelta(base, s)
			if err != nil {
				t.Fatalf("SnapshotDelta: %v", err)
			}
			want := checkGolden(t, "v2_delta_"+strings.TrimPrefix(name, "v1_"), delta, "wire format v2")
			full, err := snap.ApplyDelta(base, want)
			if err != nil {
				t.Fatalf("golden delta no longer applies: %v", err)
			}
			live, err := snap.Snapshot(s)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(full, live) {
				t.Fatalf("golden delta folds to %d bytes != live snapshot %d bytes", len(full), len(live))
			}
			if _, err := snap.Restore(full); err != nil {
				t.Fatalf("folded golden no longer restores: %v", err)
			}
		})
	}
}
