package snap

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/wire"
	"repro/sample"
)

// Name returns the canonical content-addressed file name for a
// snapshot: "<kind>-<sha256/8B hex>.tpsn", e.g.
// "lp-4ae1c0ffee127b05.tpsn" or "coordinator-…" for a
// shard.Coordinator checkpoint (wire kind 0xC0). Because the codec is
// deterministic — one sampler state has exactly one encoding (sorted
// map exports, fixed field order; see the package comment) — equal
// states produce equal names, so a store that writes by Name
// deduplicates identical checkpoints for free and a fetched snapshot
// can be verified against the name it was advertised under. The digest
// is truncated to 64 bits: a collision needs ~2³² distinct checkpoints
// from one deployment, and a collision's only cost is a skipped
// duplicate write, not corruption.
//
// Name does not validate the snapshot beyond its header; undecodable
// headers yield the "invalid-" prefix rather than an error, so callers
// can name quarantined bytes too. v2 deltas (which are just as
// deterministic: one (base, state) pair, one encoding) get a "-delta"
// label suffix, e.g. "coordinator-delta-4ae1c0ffee127b05.tpsn" — note
// a delta's name addresses the *diff*, while the name a node advertises
// for its state is always the resolved full snapshot's.
func Name(data []byte) string {
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%s-%x.tpsn", kindLabel(data), sum[:8])
}

// kindLabel names the snapshot's kind byte for human-readable file
// names: the sample.Kind constructor names in lower case, or
// "coordinator" for sample/shard checkpoints, with "-delta" appended
// for wire format v2.
func kindLabel(data []byte) string {
	version, kind, err := wire.Sniff(data)
	if err != nil ||
		(version != wire.FormatVersion && version != wire.FormatVersionDelta) {
		return "invalid"
	}
	label := baseKindLabel(kind)
	if version == wire.FormatVersionDelta {
		label += "-delta"
	}
	return label
}

func baseKindLabel(kind uint8) string {
	if kind == wire.KindCoordinator {
		return "coordinator"
	}
	switch sample.Kind(kind) {
	case sample.KindL1:
		return "l1"
	case sample.KindLp:
		return "lp"
	case sample.KindMEstimator:
		return "mestimator"
	case sample.KindF0:
		return "f0"
	case sample.KindF0Oracle:
		return "f0oracle"
	case sample.KindTukey:
		return "tukey"
	case sample.KindWindowMEstimator:
		return "windowmestimator"
	case sample.KindWindowLp:
		return "windowlp"
	case sample.KindWindowF0:
		return "windowf0"
	case sample.KindWindowTukey:
		return "windowtukey"
	case sample.KindRandOrderL2:
		return "randorderl2"
	case sample.KindRandOrderLp:
		return "randorderlp"
	case sample.KindMatrixRowsL1:
		return "matrixrowsl1"
	case sample.KindMatrixRowsL2:
		return "matrixrowsl2"
	case sample.KindTurnstileF0:
		return "turnstilef0"
	case sample.KindMultipassLp:
		return "multipasslp"
	}
	return fmt.Sprintf("kind%d", kind)
}
