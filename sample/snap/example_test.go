package snap_test

import (
	"errors"
	"fmt"

	"repro/sample"
	"repro/sample/snap"
)

// Checkpoint a sampler mid-stream and restore it elsewhere: the
// restored sampler continues the original's update and query coin
// streams bit-for-bit, so the split run answers exactly what one
// uninterrupted run would. A single-item stream makes the (random)
// sample deterministic for this example's output.
func ExampleSnapshot() {
	s := sample.NewL1(0.05, 42)
	for i := 0; i < 60; i++ {
		s.Process(7)
	}
	data, err := snap.Snapshot(s)
	if err != nil {
		panic(err)
	}

	restored, err := snap.Restore(data)
	if err != nil {
		panic(err)
	}
	restored.Process(7) // the stream continues where the snapshot stopped
	out, ok := restored.Sample()
	fmt.Println(ok, out.Item, restored.StreamLen())
	// Output:
	// true 7 61
}

// Snapshots are deterministic — one sampler state has exactly one
// encoding — so Name gives every checkpoint a stable content-addressed
// file name: identical states produce identical names.
func ExampleName() {
	s := sample.NewL1(0.05, 42)
	s.Process(3)
	a, _ := snap.Snapshot(s)
	b, _ := snap.Snapshot(s) // same state, same bytes
	fmt.Println(snap.Name(a) == snap.Name(b))
	// Output:
	// true
}

// Merge combines per-shard snapshots into one truly perfect global
// sampler: each query trial draws a snapshot with probability m_j/m
// and consumes one of its framework instances, so the merged law over
// the union of the shard streams is exactly the single-machine law.
// Single-item shard streams make the draw deterministic here.
func ExampleMerge() {
	snaps := make([][]byte, 3)
	for j := range snaps {
		s := sample.NewL1(0.05, uint64(j)+1) // distinct per-shard seeds
		for i := 0; i < 40; i++ {
			s.Process(9)
		}
		data, err := snap.Snapshot(s)
		if err != nil {
			panic(err)
		}
		snaps[j] = data
	}
	g, err := snap.Merge(99, snaps...)
	if err != nil {
		panic(err)
	}
	out, ok := g.Sample()
	fmt.Println(ok, out.Item, g.StreamLen(), g.Shards())
	// Output:
	// true 9 120 3
}

// Sliding-window snapshots refuse to merge — a window is local to its
// own stream's clock — and the refusal carries a typed sentinel so
// aggregators can report it cleanly.
func ExampleErrWindowMergeUnsupported() {
	mk := func(seed uint64) sample.Sampler {
		return sample.NewWindowLp(2, 64, 32, 0.1, true, seed)
	}
	var snaps [][]byte
	for j := uint64(0); j < 2; j++ {
		s := mk(j + 1)
		s.Process(5)
		data, err := snap.Snapshot(s)
		if err != nil {
			panic(err)
		}
		snaps = append(snaps, data)
	}
	_, err := snap.Merge(1, snaps...)
	fmt.Println(errors.Is(err, snap.ErrWindowMergeUnsupported))
	// Output:
	// true
}
