package snap

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/matrixsampler"
	"repro/internal/rng"
	"repro/sample"
)

// mergeSeedMix folds the caller's seed into the mixture stream. One
// constant shared by every draw path so a MergePlan draw with qseed
// and a Merged built from the same seed consume identical mixture
// coins.
const mergeSeedMix = 0x5eed5eed5eed5eed

// MergePlan is the reusable half of a cross-snapshot merge: everything
// MergeStates computes that does not depend on the query seed —
// decoded pools, per-shard stream masses m_j, the global ζ, the
// state-level unions of the single-sampler kinds — frozen into one
// immutable-by-contract value. Build it once per fleet state with
// BuildMergePlan, then answer any number of queries with SampleK/Draw,
// each of which costs only fresh mixture draws (plus, for the
// framework kinds, a one-time lazy materialization of each query
// group's trial table).
//
// Why caching preserves the law: the per-instance acceptance coins are
// frozen inside the snapshotted pool states — a fresh MergeStates per
// query restores the same RNG states and therefore replays the same
// trials — so the only per-query randomness the old path ever had was
// the mixture draw sequence, which SampleK still takes fresh from
// qseed. Trials are independent of the draw sequence (each trial's
// acceptance law depends only on the instance it lands on), so a plan
// that materializes every group's trials once and re-runs only the
// mixture has exactly the per-query marginal law of a fresh merge.
// Across queries the correlation contract is the library's usual one:
// repeated queries against one plan replay correlated trials; k
// mutually independent samples come from one SampleK(qseed, k) over
// disjoint groups.
//
// Concurrency: SampleK and Draw are safe from any goroutine. The
// framework kinds' group tables are materialized under an internal
// mutex and read-only afterwards; matrix trials never touch sampler
// state (matrixsampler.Trial's contract); the single-sampler kinds
// (F0, F0 oracle, strict-turnstile, multipass) restore a fresh sampler
// from the cached merged state per call, serialized by the same mutex.
type MergePlan struct {
	kind    sample.Kind
	total   int64
	queries int
	shards  int
	budget  int
	zeta    float64
	lens    []int64

	// Framework kinds: decoded pools mixed by stream mass, plus the
	// per-group trial tables ensureGroups materializes from them.
	pools []*core.GSampler
	mu    sync.Mutex
	// groups[q][j] is group q's trial vector for pool j, coins already
	// flipped. Entries are append-only under mu and immutable once
	// built, so readers that obtained a prefix under mu may index it
	// lock-free.
	groups [][][]core.Trial

	// Matrix kinds: decoded per-shard samplers whose instances each
	// draw drives through Trial with its own coin stream.
	matrix []*matrixsampler.Sampler

	// Single-sampler kinds: the merged state (the expensive union /
	// min-hash composition / absorb / concatenation, computed once).
	// Draws restore from it under mu — exactly the fresh-restore-per-
	// query behavior an uncached MergeStates sequence had.
	single *sample.State
}

// BuildMergePlan is the expensive half of MergeStates: it validates
// compatibility, restores the snapshots, computes the mixture weights
// and the global ζ, and performs the per-kind state merges — returning
// a plan any number of queries can draw from. The per-kind rules and
// the refusal errors are exactly Merge's.
func BuildMergePlan(states ...sample.State) (*MergePlan, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("snap: nothing to merge")
	}
	if err := compatibleSpecs(states); err != nil {
		return nil, err
	}
	spec := states[0].Spec
	p := &MergePlan{
		kind:    spec.Kind,
		queries: spec.Queries,
		shards:  len(states),
	}
	switch spec.Kind {
	case sample.KindL1, sample.KindMEstimator, sample.KindLp:
		return p.buildFramework(states)
	case sample.KindF0:
		return p.buildF0(states)
	case sample.KindF0Oracle:
		return p.buildOracle(states)
	case sample.KindMatrixRowsL1, sample.KindMatrixRowsL2:
		return p.buildMatrix(states)
	case sample.KindTurnstileF0:
		return p.buildTurnstile(states)
	case sample.KindMultipassLp:
		return p.buildMultipass(states)
	case sample.KindWindowMEstimator, sample.KindWindowLp,
		sample.KindWindowF0, sample.KindWindowTukey:
		return nil, fmt.Errorf("snap: %v snapshots: %w", spec.Kind, ErrWindowMergeUnsupported)
	case sample.KindRandOrderL2, sample.KindRandOrderLp:
		return nil, fmt.Errorf("snap: %v snapshots: %w", spec.Kind, ErrRandOrderMergeUnsupported)
	case sample.KindTukey:
		return nil, fmt.Errorf("snap: %v snapshots do not merge (the Tukey rejection layer needs a per-shard split of its coin stream)", spec.Kind)
	}
	return nil, fmt.Errorf("snap: unsupported kind %v", spec.Kind)
}

// Kind returns the merged kind the plan answers for.
func (p *MergePlan) Kind() sample.Kind { return p.kind }

// Shards returns the number of merged snapshots.
func (p *MergePlan) Shards() int { return p.shards }

// StreamLen returns the total stream mass Σ m_j across snapshots.
func (p *MergePlan) StreamLen() int64 { return p.total }

// Queries returns the provisioned query-group count (1 for the matrix
// and single-sampler kinds).
func (p *MergePlan) Queries() int {
	if p.pools == nil {
		return 1
	}
	return p.queries
}

// Merged wraps the plan in a sample.Sampler whose mixture stream
// starts at seed and advances across calls — the value MergeStates
// returns. Several Merged views may share one plan; the single-sampler
// kinds restore their own sampler here so successive calls on one
// Merged advance it exactly as the pre-plan implementation did.
func (p *MergePlan) Merged(seed uint64) (*Merged, error) {
	m := &Merged{plan: p, src: rng.New(seed ^ mergeSeedMix)}
	if p.single != nil {
		s, err := sample.FromState(*p.single)
		if err != nil {
			return nil, err
		}
		m.single = s
	}
	return m, nil
}

// SampleK answers one query from the plan: up to k mutually
// independent merged samples (clamped to the provisioned group count)
// whose mixture draws come from qseed alone. Equal qseeds replay equal
// answers against an unchanged plan — a fresh qseed per query is the
// caller's side of the contract (sample/serve's aggregator derives one
// from its query counter). The single-sampler kinds take their
// randomness from the restored sampler's own frozen stream, so qseed
// does not vary their answer; independence across their queries
// returns as the fleet's state moves, as before.
func (p *MergePlan) SampleK(qseed uint64, k int) ([]sample.Outcome, int) {
	if k < 1 {
		panic("snap: SampleK needs k ≥ 1")
	}
	if p.single != nil {
		p.mu.Lock()
		defer p.mu.Unlock()
		s, err := sample.FromState(*p.single)
		if err != nil {
			// Unreachable: BuildMergePlan restored this exact state.
			return nil, 0
		}
		return s.SampleK(k)
	}
	src := rng.New(qseed ^ mergeSeedMix)
	if p.matrix != nil {
		return p.sampleMatrix(src)
	}
	return p.sampleFramework(src, k)
}

// Draw is SampleK for a single sample: the item and ok=false on FAIL.
func (p *MergePlan) Draw(qseed uint64) (sample.Outcome, bool) {
	outs, n := p.SampleK(qseed, 1)
	if n == 0 {
		return sample.Outcome{}, false
	}
	return outs[0], true
}

func (p *MergePlan) sampleFramework(src *rng.PCG, k int) ([]sample.Outcome, int) {
	if k > p.queries {
		k = p.queries
	}
	if p.total == 0 {
		outs := make([]sample.Outcome, k)
		for i := range outs {
			outs[i] = sample.Outcome{Bottom: true}
		}
		return outs, k
	}
	groups := p.ensureGroups(k)
	used := make([]int, p.shards)
	outs := make([]sample.Outcome, 0, k)
	for q := 0; q < k; q++ {
		if out, ok := p.mergeGroup(src, used, groups[q]); ok {
			outs = append(outs, out)
		}
	}
	return outs, len(outs)
}

func (p *MergePlan) sampleMatrix(src *rng.PCG) ([]sample.Outcome, int) {
	// Matrix samplers provision one query (their instances form one
	// shared trial pool); SampleK degrades to a single draw like the
	// in-process adapter's.
	if p.total == 0 {
		return []sample.Outcome{{Bottom: true}}, 1
	}
	used := make([]int, len(p.matrix))
	flip := func(pr float64) bool { return src.Bernoulli(pr) }
	for t := 0; t < p.budget; t++ {
		j := drawSnapshot(src, p.lens, p.total)
		row, ok := p.matrix[j].Trial(used[j], flip)
		used[j]++
		if ok {
			return []sample.Outcome{{Item: row, Freq: -1}}, 1
		}
	}
	return nil, 0
}

// ensureGroups materializes groups [0, k) of every pool's trial table
// and returns a stable prefix. Groups are always filled in increasing
// order, so each pool's coin consumption is a deterministic function
// of the snapshotted states alone — two plans built from equal states
// answer equal draws for equal qseeds, which is what makes the
// aggregator's cached plan bit-for-bit reproducible.
func (p *MergePlan) ensureGroups(k int) [][][]core.Trial {
	p.mu.Lock()
	defer p.mu.Unlock()
	for q := len(p.groups); q < k; q++ {
		shardTrials := make([][]core.Trial, len(p.pools))
		for j, pool := range p.pools {
			shardTrials[j] = pool.TrialsGroupZeta(q, p.zeta)
		}
		p.groups = append(p.groups, shardTrials)
	}
	return p.groups[:k:k]
}

// mergeGroup runs the m_j/m mixture over one group's materialized
// trials: trial t consumes the next unused instance of a snapshot
// drawn with probability m_j/m, and the first acceptance wins —
// shard.Coordinator's merge across process boundaries. Trials are
// independent of the draw sequence, so the output law is unchanged by
// the eager materialization.
func (p *MergePlan) mergeGroup(src *rng.PCG, used []int, group [][]core.Trial) (sample.Outcome, bool) {
	clear(used)
	for t := 0; t < p.budget; t++ {
		j := drawSnapshot(src, p.lens, p.total)
		tr := group[j][used[j]]
		used[j]++
		if tr.OK {
			return sample.Outcome{Item: tr.Out.Item, Freq: tr.Out.AfterCount}, true
		}
	}
	return sample.Outcome{}, false
}

// bitsUsed reports the live size of the plan's merged structure,
// excluding any single-sampler restore (Merged adds its own).
func (p *MergePlan) bitsUsed() int64 {
	var b int64 = 256
	for _, s := range p.matrix {
		b += s.BitsUsed()
	}
	for _, pool := range p.pools {
		b += pool.BitsUsed()
	}
	return b
}
