// Package snap is the snapshot subsystem of the truly perfect sampling
// library: a versioned, deterministic binary codec that lets sampler
// state leave the process — be checkpointed to disk, restored after a
// crash, shipped across machines, and merged into one global sampler
// with the same exactness guarantee the in-process samplers carry.
//
// # Why snapshots compose exactly
//
// This is the operational payoff of ε = γ = 0 (§1 of arXiv:2108.12017):
// a truly perfect sampler's output law carries no relative and no
// additive error, so per-shard samplers on disjoint streams merge into
// a truly perfect global sampler with no error accounting. Merge
// realizes that across process boundaries: it decodes per-snapshot
// pools and runs the shard mixture of sample/shard — draw a snapshot j
// with probability m_j/m, consume one unused framework instance of j —
// so each merged trial has exactly the single-machine per-trial law
// G(f_i)/(ζm), and the first acceptance out of the trial budget has
// exactly the single-machine sampler's law. See sample/shard's package
// comment for the telescoping argument; Merge is the same mixture with
// "worker goroutine" replaced by "decoded snapshot".
//
// # Wire format (v1)
//
//	magic   "TPSN"                      4 bytes
//	version 1                           1 byte
//	kind    sample.Kind                 1 byte
//	spec    constructor parameters      fixed field order
//	state   kind-specific layer states  see internal/wire
//
// Integers are varints, counts are validated against the remaining
// buffer before any allocation, floats and RNG states are fixed 64-bit
// words, and map contents are encoded in sorted key order — so a given
// sampler has exactly one encoding, identical across platforms, and
// the golden-file test can pin the format byte-for-byte. The decoder
// never panics on corrupted, truncated, or hostile input (the
// FuzzSnapDecode target); restores re-run the recorded constructor and
// re-validate every structural invariant before installing state.
// Determinism also gives snapshots stable identities: Name derives a
// content-addressed file name from the bytes, which the sample/serve
// checkpoint stores use to deduplicate identical checkpoints.
//
// # Bit-for-bit continuation
//
// A snapshot captures every piece of mutable state, including the raw
// PCG states and PRF keys of internal/rng. A restored sampler
// therefore continues the original's update and query variate streams
// exactly: feed both the same suffix and they produce identical
// outcomes, coin for coin.
package snap

import (
	"fmt"

	"repro/internal/wire"
	"repro/sample"
)

// maxMeasureName bounds the measure-name field; the predefined names
// are all ≤ 8 bytes.
const maxMeasureName = 32

// Snapshot encodes a sampler's complete state into the versioned wire
// format. It errors for samplers outside the snapshot surface: custom
// measures, the smooth-histogram window normalizer, and any sampler
// not built by a Kind-listed constructor (those all implement
// sample.Stateful — the matrix, turnstile-F0 and multipass families
// through their Stream views).
func Snapshot(s sample.Sampler) ([]byte, error) {
	st, ok := s.(sample.Stateful)
	if !ok {
		return nil, fmt.Errorf("snap: %T does not support snapshots", s)
	}
	state, err := st.SnapState()
	if err != nil {
		return nil, err
	}
	return Encode(state)
}

// Encode serializes an exported sampler state. Most callers want
// Snapshot; Encode is the half the shard coordinator codec and tests
// build on.
func Encode(st sample.State) ([]byte, error) {
	if st.Spec.Kind == sample.KindInvalid {
		return nil, fmt.Errorf("snap: state has no kind")
	}
	// Refuse specs outside the codec's portable ranges here, at
	// checkpoint time — a snapshot that encodes but can never restore
	// is worse than no snapshot.
	if err := sample.ValidateSpec(st.Spec); err != nil {
		return nil, err
	}
	w := &wire.Writer{}
	wire.PutHeader(w, uint8(st.Spec.Kind))
	putSpec(w, st.Spec)
	if err := putPayload(w, st); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// Restore decodes a snapshot and rebuilds a working sampler from it.
// The restored sampler continues the snapshotted sampler's update and
// query streams bit-for-bit.
func Restore(data []byte) (sample.Sampler, error) {
	st, err := Decode(data)
	if err != nil {
		return nil, err
	}
	return sample.FromState(st)
}

// Decode parses a snapshot into an exported sampler state without
// rebuilding the sampler. Merge uses it to combine states before a
// single restore.
func Decode(data []byte) (sample.State, error) {
	r := wire.NewReader(data)
	kind := sample.Kind(wire.Header(r))
	spec := specR(r, kind)
	st := sample.State{Spec: spec}
	payloadR(r, &st)
	if err := r.Done(); err != nil {
		return sample.State{}, fmt.Errorf("snap: %w", err)
	}
	return st, nil
}

// putSpec writes every Spec field in fixed order. Writing the full
// record regardless of kind keeps the layout trivially versionable:
// v1 is one flat field list, not ten per-kind layouts.
func putSpec(w *wire.Writer, spec sample.Spec) {
	w.String(spec.Measure)
	w.F64(spec.P)
	w.F64(spec.Tau)
	w.F64(spec.Delta)
	w.Varint(spec.N)
	w.Varint(spec.M)
	w.Varint(spec.W)
	w.Uvarint(uint64(spec.FreqCap))
	w.Uvarint(uint64(spec.Queries))
	w.Bool(spec.TrulyPerfect)
	w.U64(spec.Seed)
}

func specR(r *wire.Reader, kind sample.Kind) sample.Spec {
	return sample.Spec{
		Kind:         kind,
		Measure:      r.String(maxMeasureName),
		P:            r.F64(),
		Tau:          r.F64(),
		Delta:        r.F64(),
		N:            r.Varint(),
		M:            r.Varint(),
		W:            r.Varint(),
		FreqCap:      int(r.Uvarint() & 0x3fffffff),
		Queries:      int(r.Uvarint() & 0x3fffffff),
		TrulyPerfect: r.Bool(),
		Seed:         r.U64(),
	}
}

func putPayload(w *wire.Writer, st sample.State) error {
	switch st.Spec.Kind {
	case sample.KindL1, sample.KindMEstimator:
		if st.G == nil {
			return missingPayload(st.Spec.Kind)
		}
		wire.PutGSamplerState(w, *st.G)
	case sample.KindLp:
		if st.Lp == nil {
			return missingPayload(st.Spec.Kind)
		}
		wire.PutLpSamplerState(w, *st.Lp)
	case sample.KindF0:
		if st.F0Pool == nil {
			return missingPayload(st.Spec.Kind)
		}
		wire.PutF0PoolState(w, *st.F0Pool)
	case sample.KindF0Oracle:
		if st.F0Oracle == nil {
			return missingPayload(st.Spec.Kind)
		}
		wire.PutOracleState(w, *st.F0Oracle)
	case sample.KindTukey:
		if st.Tukey == nil {
			return missingPayload(st.Spec.Kind)
		}
		wire.PutTukeyState(w, *st.Tukey)
	case sample.KindWindowMEstimator:
		if st.WindowG == nil {
			return missingPayload(st.Spec.Kind)
		}
		wire.PutWindowGState(w, *st.WindowG)
	case sample.KindWindowLp:
		if st.WindowLp == nil {
			return missingPayload(st.Spec.Kind)
		}
		wire.PutWindowLpState(w, *st.WindowLp)
	case sample.KindWindowF0:
		if st.F0WindowPool == nil {
			return missingPayload(st.Spec.Kind)
		}
		wire.PutF0WindowPoolState(w, *st.F0WindowPool)
	case sample.KindWindowTukey:
		if st.WindowTukey == nil {
			return missingPayload(st.Spec.Kind)
		}
		wire.PutWindowTukeyState(w, *st.WindowTukey)
	case sample.KindRandOrderL2:
		if st.RandOrderL2 == nil {
			return missingPayload(st.Spec.Kind)
		}
		wire.PutRandOrderL2State(w, *st.RandOrderL2)
	case sample.KindRandOrderLp:
		if st.RandOrderLp == nil {
			return missingPayload(st.Spec.Kind)
		}
		wire.PutRandOrderLpState(w, *st.RandOrderLp)
	case sample.KindMatrixRowsL1, sample.KindMatrixRowsL2:
		if st.Matrix == nil {
			return missingPayload(st.Spec.Kind)
		}
		wire.PutMatrixState(w, *st.Matrix)
	case sample.KindTurnstileF0:
		if st.TurnstilePool == nil {
			return missingPayload(st.Spec.Kind)
		}
		wire.PutTurnstilePoolState(w, *st.TurnstilePool)
	case sample.KindMultipassLp:
		if st.Multipass == nil {
			return missingPayload(st.Spec.Kind)
		}
		wire.PutMultipassState(w, st.Multipass.Updates,
			st.Multipass.Passes, st.Multipass.PeakWords)
	default:
		return fmt.Errorf("snap: unknown sampler kind %v", st.Spec.Kind)
	}
	return nil
}

func missingPayload(k sample.Kind) error {
	return fmt.Errorf("snap: %v state missing its payload", k)
}

func payloadR(r *wire.Reader, st *sample.State) {
	switch st.Spec.Kind {
	case sample.KindL1, sample.KindMEstimator:
		g := wire.GSamplerStateR(r)
		st.G = &g
	case sample.KindLp:
		lp := wire.LpSamplerStateR(r)
		st.Lp = &lp
	case sample.KindF0:
		p := wire.F0PoolStateR(r)
		st.F0Pool = &p
	case sample.KindF0Oracle:
		o := wire.OracleStateR(r)
		st.F0Oracle = &o
	case sample.KindTukey:
		t := wire.TukeyStateR(r)
		st.Tukey = &t
	case sample.KindWindowMEstimator:
		g := wire.WindowGStateR(r)
		st.WindowG = &g
	case sample.KindWindowLp:
		lp := wire.WindowLpStateR(r)
		st.WindowLp = &lp
	case sample.KindWindowF0:
		p := wire.F0WindowPoolStateR(r)
		st.F0WindowPool = &p
	case sample.KindWindowTukey:
		t := wire.WindowTukeyStateR(r)
		st.WindowTukey = &t
	case sample.KindRandOrderL2:
		ro := wire.RandOrderL2StateR(r)
		st.RandOrderL2 = &ro
	case sample.KindRandOrderLp:
		ro := wire.RandOrderLpStateR(r)
		st.RandOrderLp = &ro
	case sample.KindMatrixRowsL1, sample.KindMatrixRowsL2:
		m := wire.MatrixStateR(r)
		st.Matrix = &m
	case sample.KindTurnstileF0:
		p := wire.TurnstilePoolStateR(r)
		st.TurnstilePool = &p
	case sample.KindMultipassLp:
		mp := sample.MultipassState{}
		mp.Updates, mp.Passes, mp.PeakWords = wire.MultipassStateR(r)
		st.Multipass = &mp
	}
	// Unknown kinds fall through with no payload; Done reports the
	// trailing bytes and FromState rejects the kind.
}
