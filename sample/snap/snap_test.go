package snap_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/stream"
	"repro/sample"
	"repro/sample/snap"
)

// kinds enumerates every snapshot-able public constructor with a
// mid-size configuration, shared across the tests here and the claim
// tests at the repository root.
func testKinds() map[string]func(seed uint64) sample.Sampler {
	const (
		n     = int64(256)
		m     = int64(4096)
		w     = int64(128)
		delta = 0.1
	)
	return map[string]func(seed uint64) sample.Sampler{
		"l1": func(s uint64) sample.Sampler {
			return sample.NewL1(delta, s, sample.Queries(2))
		},
		"lp0.5": func(s uint64) sample.Sampler {
			return sample.NewLp(0.5, n, m, delta, s)
		},
		"lp2": func(s uint64) sample.Sampler {
			return sample.NewLp(2, n, m, delta, s, sample.Queries(2))
		},
		"mest-l1l2": func(s uint64) sample.Sampler {
			return sample.NewMEstimator(sample.MeasureL1L2(), m, delta, s)
		},
		"mest-huber": func(s uint64) sample.Sampler {
			return sample.NewMEstimator(sample.MeasureHuber(2), m, delta, s)
		},
		"mest-sqrt": func(s uint64) sample.Sampler {
			return sample.NewMEstimator(sample.MeasureSqrt(), m, delta, s)
		},
		"f0": func(s uint64) sample.Sampler {
			return sample.NewF0(n, delta, s, sample.Queries(2))
		},
		"f0-oracle": func(s uint64) sample.Sampler {
			return sample.NewF0Oracle(s)
		},
		"tukey": func(s uint64) sample.Sampler {
			return sample.NewTukey(3, n, delta, s)
		},
		"window-mest": func(s uint64) sample.Sampler {
			return sample.NewWindowMEstimator(sample.MeasureL1L2(), w, delta, s, sample.Queries(2))
		},
		"window-lp": func(s uint64) sample.Sampler {
			return sample.NewWindowLp(2, n, w, delta, true, s)
		},
		"window-f0": func(s uint64) sample.Sampler {
			return sample.NewWindowF0(n, w, 3, delta, s)
		},
		"window-tukey": func(s uint64) sample.Sampler {
			return sample.NewWindowTukey(3, n, w, delta, s)
		},
		// The formerly dormant single-stream kinds, snapshot-able since
		// their Stream views joined the Kind registry. Matrix columns are
		// 16 so every test item in [0, 256) is a valid packed entry;
		// non-negative items are strict-turnstile insertions.
		"randorder-l2": func(s uint64) sample.Sampler {
			return sample.NewRandomOrderL2(w, 16, s)
		},
		"randorder-lp": func(s uint64) sample.Sampler {
			return sample.NewRandomOrderLp(3, w, s)
		},
		"matrix-l1": func(s uint64) sample.Sampler {
			return sample.NewMatrixRowsL1(16, m, delta, s).Stream()
		},
		"matrix-l2": func(s uint64) sample.Sampler {
			return sample.NewMatrixRowsL2(16, m, delta, s).Stream()
		},
		"turnstile-f0": func(s uint64) sample.Sampler {
			return sample.NewTurnstileF0(n, delta, s).Stream()
		},
		"multipass-lp": func(s uint64) sample.Sampler {
			return sample.NewMultipassLp(2, 0.5, delta, s).Stream(n)
		},
	}
}

// drain pulls a deterministic sequence of queries from a sampler: the
// comparison signature for bit-for-bit tests. Every call consumes
// query randomness, so identical signatures mean identical coin
// streams.
func drain(s sample.Sampler, rounds int) []sample.Outcome {
	var sig []sample.Outcome
	for i := 0; i < rounds; i++ {
		if out, ok := s.Sample(); ok {
			sig = append(sig, out)
		} else {
			sig = append(sig, sample.Outcome{Item: -999})
		}
		outs, _ := s.SampleK(2)
		sig = append(sig, outs...)
	}
	return sig
}

// TestRoundTripContinuation is the package-level version of the
// repository's TestClaimSnapshotRoundTrip: snapshot mid-stream,
// restore, feed the identical suffix to the original and the restored
// sampler, and demand bit-for-bit identical outcomes — including query
// coin streams and memory accounting.
func TestRoundTripContinuation(t *testing.T) {
	gen := stream.NewGenerator(rng.New(7))
	items := gen.Zipf(256, 4096, 1.2)
	half := len(items) / 2
	for name, mk := range testKinds() {
		t.Run(name, func(t *testing.T) {
			orig := mk(42)
			for _, it := range items[:half] {
				orig.Process(it)
			}
			data, err := snap.Snapshot(orig)
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			restored, err := snap.Restore(data)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if got, want := restored.StreamLen(), orig.StreamLen(); got != want {
				t.Fatalf("restored StreamLen %d, want %d", got, want)
			}
			// Continue both on the identical suffix, batched differently on
			// purpose (batching must not change state evolution).
			orig.ProcessBatch(items[half:])
			for _, it := range items[half:] {
				restored.Process(it)
			}
			if got, want := drain(restored, 5), drain(orig, 5); !reflect.DeepEqual(got, want) {
				t.Fatalf("restored outcomes diverge:\n got %v\nwant %v", got, want)
			}
			if got, want := restored.BitsUsed(), orig.BitsUsed(); got != want {
				t.Fatalf("restored BitsUsed %d, want %d", got, want)
			}
		})
	}
}

// TestSnapshotDeterministic: one sampler state has exactly one
// encoding, and re-snapshotting a restored sampler reproduces it.
func TestSnapshotDeterministic(t *testing.T) {
	gen := stream.NewGenerator(rng.New(9))
	items := gen.Zipf(256, 2048, 1.1)
	for name, mk := range testKinds() {
		t.Run(name, func(t *testing.T) {
			s := mk(7)
			s.ProcessBatch(items)
			a, err := snap.Snapshot(s)
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			b, err := snap.Snapshot(s)
			if err != nil {
				t.Fatalf("second Snapshot: %v", err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("snapshot encoding not deterministic")
			}
			restored, err := snap.Restore(a)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			c, err := snap.Snapshot(restored)
			if err != nil {
				t.Fatalf("re-Snapshot: %v", err)
			}
			if !bytes.Equal(a, c) {
				t.Fatalf("restore→snapshot does not reproduce the original encoding")
			}
		})
	}
}

// TestUnsupportedSnapshots pins the documented refusals — and that the
// random-order kinds, once on the refusal list, now snapshot cleanly.
func TestUnsupportedSnapshots(t *testing.T) {
	ro := sample.NewRandomOrderL2(64, 16, 1)
	if _, err := snap.Snapshot(ro); err != nil {
		t.Fatalf("random-order sampler no longer snapshots: %v", err)
	}
	smooth := sample.NewWindowLp(2, 256, 64, 0.1, false, 1)
	if _, err := snap.Snapshot(smooth); err == nil {
		t.Fatalf("smooth-normalizer window sampler snapshotted without error")
	}
	custom := sample.NewMEstimator(customMeasure{}, 100, 0.1, 1)
	if _, err := snap.Snapshot(custom); err == nil {
		t.Fatalf("custom-measure sampler snapshotted without error")
	}
}

type customMeasure struct{}

func (customMeasure) Name() string                 { return "custom" }
func (customMeasure) G(x int64) float64            { return float64(x) }
func (customMeasure) Increment(int64) float64      { return 1 }
func (customMeasure) Zeta(int64) float64           { return 1 }
func (customMeasure) LowerBoundFG(m int64) float64 { return float64(m) }

// TestDecodeRejectsCorruption: flipped kind bytes, truncations and
// junk must error (the fuzz target explores this space much harder;
// this pins a few deterministic cases).
func TestDecodeRejectsCorruption(t *testing.T) {
	s := sample.NewL1(0.1, 3)
	s.Process(1)
	s.Process(2)
	data, err := snap.Snapshot(s)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if _, err := snap.Restore(nil); err == nil {
		t.Fatalf("empty input restored")
	}
	for cut := 1; cut < len(data); cut += 7 {
		if _, err := snap.Restore(data[:cut]); err == nil {
			t.Fatalf("truncation at %d restored", cut)
		}
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff // magic
	if _, err := snap.Restore(bad); err == nil {
		t.Fatalf("bad magic restored")
	}
	bad = append([]byte(nil), data...)
	bad[4] = 99 // version
	if _, err := snap.Restore(bad); err == nil {
		t.Fatalf("future version restored")
	}
	bad = append([]byte(nil), data...)
	bad[5] = 0xee // kind
	if _, err := snap.Restore(bad); err == nil {
		t.Fatalf("unknown kind restored")
	}
	if _, err := snap.Restore(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatalf("trailing byte accepted")
	}
}

// TestMergeValidation pins Merge's refusals: empty input, mismatched
// parameters, seed requirements, unsupported kinds.
func TestMergeValidation(t *testing.T) {
	if _, err := snap.Merge(1); err == nil {
		t.Fatalf("empty merge accepted")
	}
	mkL1 := func(delta float64, seed uint64) []byte {
		s := sample.NewL1(delta, seed)
		s.Process(1)
		b, err := snap.Snapshot(s)
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		return b
	}
	if _, err := snap.Merge(1, mkL1(0.1, 1), mkL1(0.2, 2)); err == nil {
		t.Fatalf("parameter mismatch accepted")
	}
	if _, err := snap.Merge(1, mkL1(0.1, 1), mkL1(0.1, 2)); err != nil {
		t.Fatalf("L1 merge with distinct seeds should work: %v", err)
	}
	// F0 requires a shared seed.
	mkF0 := func(seed uint64) []byte {
		s := sample.NewF0(64, 0.1, seed)
		s.Process(1)
		b, err := snap.Snapshot(s)
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		return b
	}
	if _, err := snap.Merge(1, mkF0(1), mkF0(2)); err == nil {
		t.Fatalf("F0 merge with distinct seeds accepted")
	}
	if _, err := snap.Merge(1, mkF0(5), mkF0(5)); err != nil {
		t.Fatalf("F0 merge with shared seed: %v", err)
	}
	// Window kinds do not merge, and the refusal carries the typed
	// sentinel aggregators match on.
	w := sample.NewWindowF0(64, 32, 2, 0.1, 9)
	w.Process(1)
	wb, err := snap.Snapshot(w)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if _, err := snap.Merge(1, wb, wb); !errors.Is(err, snap.ErrWindowMergeUnsupported) {
		t.Fatalf("window merge: want ErrWindowMergeUnsupported, got %v", err)
	}
	// The Tukey refusal is a different condition (rejection-layer coin
	// stream, not window clocks) and must not match the window sentinel.
	tk := sample.NewTukey(3, 64, 0.1, 9)
	tk.Process(1)
	tb, err := snap.Snapshot(tk)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if _, err := snap.Merge(1, tb, tb); err == nil || errors.Is(err, snap.ErrWindowMergeUnsupported) {
		t.Fatalf("tukey merge: want a non-window refusal, got %v", err)
	}
	// Random-order kinds refuse with their own typed sentinel — distinct
	// from the window one, since the condition is arrival-order locality,
	// not clock locality.
	ro := sample.NewRandomOrderL2(32, 8, 9)
	ro.Process(1)
	rb, err := snap.Snapshot(ro)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if _, err := snap.Merge(1, rb, rb); !errors.Is(err, snap.ErrRandOrderMergeUnsupported) {
		t.Fatalf("random-order merge: want ErrRandOrderMergeUnsupported, got %v", err)
	}
	if _, err := snap.Merge(1, rb, rb); errors.Is(err, snap.ErrWindowMergeUnsupported) {
		t.Fatalf("random-order refusal must not match the window sentinel")
	}
	// Turnstile F0 is a state union over seed-derived structure: distinct
	// seeds refuse, a shared seed merges.
	mkTurnstile := func(seed uint64, items ...int64) []byte {
		s := sample.NewTurnstileF0(64, 0.1, seed).Stream()
		s.ProcessBatch(items)
		b, err := snap.Snapshot(s)
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		return b
	}
	if _, err := snap.Merge(1, mkTurnstile(1, 3), mkTurnstile(2, 5)); err == nil {
		t.Fatalf("turnstile merge with distinct seeds accepted")
	}
	if _, err := snap.Merge(1, mkTurnstile(5, 3), mkTurnstile(5, 5)); err != nil {
		t.Fatalf("turnstile merge with shared seed: %v", err)
	}
	// Matrix rows ride the mixture like the framework kinds: distinct
	// per-shard seeds are fine.
	mkMatrix := func(seed uint64, items ...int64) []byte {
		s := sample.NewMatrixRowsL1(4, 64, 0.1, seed).Stream()
		s.ProcessBatch(items)
		b, err := snap.Snapshot(s)
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		return b
	}
	if _, err := snap.Merge(1, mkMatrix(1, 5), mkMatrix(2, 9)); err != nil {
		t.Fatalf("matrix merge with distinct seeds should work: %v", err)
	}
}

// TestMergeTurnstileExact: the turnstile union must answer exactly as
// one sampler over the concatenated stream — same seed, same state,
// same coins.
func TestMergeTurnstileExact(t *testing.T) {
	const seed = 11
	a := sample.NewTurnstileF0(64, 0.1, seed).Stream()
	b := sample.NewTurnstileF0(64, 0.1, seed).Stream()
	one := sample.NewTurnstileF0(64, 0.1, seed).Stream()
	for i, it := range []int64{3, 3, 5, 9, 9, 9, 21} {
		if i%2 == 0 {
			a.Process(it)
		} else {
			b.Process(it)
		}
		one.Process(it)
	}
	ab, err := snap.Snapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := snap.Snapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	m, err := snap.Merge(1, ab, bb)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if got, want := m.StreamLen(), one.StreamLen(); got != want {
		t.Fatalf("merged StreamLen %d, want %d", got, want)
	}
	for i := 0; i < 8; i++ {
		mo, mok := m.Sample()
		oo, ook := one.Sample()
		if mok != ook || mo != oo {
			t.Fatalf("draw %d: merged (%+v, %v) != single (%+v, %v)", i, mo, mok, oo, ook)
		}
	}
}

// TestMergeMultipassConcat: the multipass merge is buffer
// concatenation — the merged sampler equals one sampler fed the
// concatenated stream (same survivor seed).
func TestMergeMultipassConcat(t *testing.T) {
	mk := func(seed uint64) sample.Sampler {
		return sample.NewMultipassLp(2, 0.5, 0.1, seed).Stream(64)
	}
	a, b, one := mk(3), mk(3), mk(3)
	aItems := []int64{3, 3, 5, 9}
	bItems := []int64{9, 9, 21, 5}
	a.ProcessBatch(aItems)
	b.ProcessBatch(bItems)
	one.ProcessBatch(aItems)
	one.ProcessBatch(bItems)
	ab, err := snap.Snapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := snap.Snapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	m, err := snap.Merge(1, ab, bb)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	mo, mok := m.Sample()
	oo, ook := one.Sample()
	if mok != ook || mo != oo {
		t.Fatalf("merged (%+v, %v) != single over concat (%+v, %v)", mo, mok, oo, ook)
	}
	if got, want := m.StreamLen(), one.StreamLen(); got != want {
		t.Fatalf("merged StreamLen %d, want %d", got, want)
	}
}

// TestMergedQueryOnly: ingestion into a merged sampler panics with the
// documented message.
func TestMergedQueryOnly(t *testing.T) {
	s := sample.NewL1(0.1, 1)
	s.Process(1)
	data, err := snap.Snapshot(s)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	m, err := snap.Merge(1, data)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Process on merged sampler did not panic")
		}
	}()
	m.Process(1)
}

// TestMergeEmptyStreams: merging snapshots of empty samplers answers ⊥.
func TestMergeEmptyStreams(t *testing.T) {
	a, err := snap.Snapshot(sample.NewL1(0.1, 1))
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	b, err := snap.Snapshot(sample.NewL1(0.1, 2))
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	m, err := snap.Merge(1, a, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	out, ok := m.Sample()
	if !ok || !out.Bottom {
		t.Fatalf("empty merge answered %+v ok=%v, want ⊥", out, ok)
	}
}

// TestMergedImplementsSampler pins the interface.
var _ sample.Sampler = (*snap.Merged)(nil)
