package snap

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/f0"
	"repro/internal/matrixsampler"
	"repro/internal/rng"
	"repro/internal/stream"
	"repro/sample"
)

// ErrWindowMergeUnsupported is returned (wrapped, with the refusing
// kind in the message) when Merge is handed sliding-window snapshots.
// The refusal is principled, not a missing feature: a window sampler's
// state is indexed by its *own* stream's clock (positions within the
// last W updates it saw), and the m_j/m mixture argument needs the
// shards to partition one stream with one global notion of "the last W
// updates" — which independent per-machine clocks do not provide. See
// ROADMAP.md "Window-sampler merge semantics" for the shared-clock
// contract a future merge would need. Callers that aggregate snapshots
// from many machines (sample/serve's aggregator) match it with
// errors.Is to report the refusal cleanly instead of retrying.
var ErrWindowMergeUnsupported = errors.New(
	"window snapshots do not merge (a sliding window is local to its own stream's clock)")

// ErrRandOrderMergeUnsupported is returned (wrapped, with the refusing
// kind in the message) when Merge is handed random-order snapshots.
// Like the window refusal this is principled, not a missing feature:
// the random-order samplers' guarantee is conditioned on one uniformly
// shuffled arrival order over the *whole* stream, and their state
// (reservoir positions, the Lp block frequencies) is indexed by that
// single stream's clock. Independent shards each see a uniform order
// over their own substream, but an interleaving of per-shard uniform
// orders is not a uniform order over the union — the m_j/m mixture has
// no analogue here. Aggregators match it with errors.Is to report the
// refusal cleanly (HTTP 422 in sample/serve) instead of retrying.
var ErrRandOrderMergeUnsupported = errors.New(
	"random-order snapshots do not merge (the uniform-order guarantee is local to one stream's arrival clock)")

// Merged is the truly perfect global sampler produced by Merge: a
// query-only sample.Sampler whose output law over the union of the
// snapshotted streams is exactly the law one sampler would have had on
// the concatenated stream. Its mixture weights are frozen at merge
// time, so it does not ingest — Process and ProcessBatch panic.
//
// A Merged is a seeded view over a MergePlan: the plan holds
// everything query-seed-independent (pools, masses, ζ, trial tables,
// state unions), the view holds the advancing mixture stream — and,
// for the single-sampler kinds, its own restored sampler, so repeated
// calls on one Merged advance it like any live sampler.
type Merged struct {
	plan   *MergePlan
	src    *rng.PCG
	single sample.Sampler
}

// Merge combines snapshots taken on disjoint shards of a stream into
// one queryable truly perfect global sampler. All snapshots must come
// from samplers built with the same constructor parameters; seed is
// the merged sampler's own randomness for the mixture draws.
//
// Three kinds of exact merges are supported:
//
//   - KindL1 / KindMEstimator / KindLp: the m_j/m shard mixture over
//     per-snapshot framework pools (the sample/shard merge run across
//     process boundaries). Per-shard samplers should use distinct
//     seeds — independence of the per-shard reservoirs is part of the
//     mixture argument. For nonlinear measures (everything except L1)
//     the shards must partition items (each item's occurrences on one
//     shard, as hash routing does); L1's linear G is exact under any
//     split. For Lp with p > 1 the per-snapshot Misra–Gries bounds
//     combine into one global ζ = p·(max_j Z_j)^{p−1}, valid because
//     item-disjoint shards have ‖f‖∞ = max_j ‖f⁽ʲ⁾‖∞.
//   - KindF0: a state-level union — per-repetition tracked sets and
//     subset-witness counts merge exactly (counts are exact and add
//     across shards), so the merged state is a valid Algorithm-5 state
//     for the concatenated stream. This requires all shards to share
//     one seed: the random subset S is the repetition's identity, and
//     union-merging witnesses is only meaningful against the same S.
//   - KindF0Oracle: min-hash composition — the global argmin is the
//     min of per-shard argmins under the shared PRF key (again: one
//     seed across shards).
//   - KindMatrixRowsL1 / KindMatrixRowsL2: the m_j/m mixture over
//     per-shard instance pools, like the framework kinds but driven
//     through matrixsampler.Trial with the merged sampler's own coin
//     stream. Lawful because the row measures' ζ is data-independent
//     and identical on every shard, so each merged trial has exactly
//     the single-machine per-trial acceptance law. Shards should use
//     distinct seeds and partition the entry updates.
//   - KindTurnstileF0: a state-level union — the sparse-recovery
//     syndromes and the exact subset counters are both linear in the
//     updates, so per-repetition states absorb into exactly the
//     repetition of the concatenated stream. Requires one shared seed
//     (the random subset is the repetition's identity).
//   - KindMultipassLp: exact concatenation — the buffered update
//     streams append, and the restored sampler replays the union from
//     scratch. Seeds need not match (the survivor's seed drives the
//     fresh passes).
//
// Window, random-order and Tukey kinds do not merge: a sliding window
// is local to its own stream's clock (the typed sentinel
// ErrWindowMergeUnsupported reports that refusal), the random-order
// guarantee is conditioned on one global uniform arrival order that
// independent shards cannot provide (ErrRandOrderMergeUnsupported),
// and the Tukey rejection layer would need a shared F0 mixture the
// attempt-pool structure does not expose.
func Merge(seed uint64, snapshots ...[]byte) (*Merged, error) {
	if len(snapshots) == 0 {
		return nil, fmt.Errorf("snap: nothing to merge")
	}
	states := make([]sample.State, len(snapshots))
	for i, b := range snapshots {
		st, err := Decode(b)
		if err != nil {
			return nil, fmt.Errorf("snapshot %d: %w", i, err)
		}
		states[i] = st
	}
	return MergeStates(seed, states...)
}

// MergeStates is Merge on already-decoded states: the half the
// sample/serve aggregator builds on, where per-node coordinator
// snapshots are exploded into per-shard sampler states
// (shard.SamplerStates) before the mixture is wired. The exactness
// argument, the per-kind compatibility rules, and the refusal errors
// are identical to Merge's. It is BuildMergePlan followed by
// MergePlan.Merged — callers answering many queries over one fleet
// state should cache the plan instead (the aggregator does).
func MergeStates(seed uint64, states ...sample.State) (*Merged, error) {
	p, err := BuildMergePlan(states...)
	if err != nil {
		return nil, err
	}
	return p.Merged(seed)
}

// compatibleSpecs demands identical constructor parameters across all
// snapshots — identical including the seed for the F0 kinds (whose
// merge is a state union over shared random structure), excluding the
// seed for the framework kinds (whose mixture argument wants
// independent per-shard pools).
func compatibleSpecs(states []sample.State) error {
	ref := states[0].Spec
	refNoSeed := ref
	refNoSeed.Seed = 0
	seedMatters := ref.Kind == sample.KindF0 || ref.Kind == sample.KindF0Oracle ||
		ref.Kind == sample.KindTurnstileF0
	for i, st := range states[1:] {
		spec := st.Spec
		if seedMatters && spec.Seed != ref.Seed {
			return fmt.Errorf("snap: %v merge needs a shared seed, snapshot %d differs", ref.Kind, i+1)
		}
		spec.Seed = 0
		if spec != refNoSeed {
			return fmt.Errorf("snap: snapshot %d parameters differ from snapshot 0 (%+v vs %+v)",
				i+1, spec, refNoSeed)
		}
	}
	return nil
}

// buildFramework restores each snapshot's sampler and wires the m_j/m
// mixture over their pools.
func (p *MergePlan) buildFramework(states []sample.State) (*MergePlan, error) {
	spec := states[0].Spec
	p.pools = make([]*core.GSampler, len(states))
	p.lens = make([]int64, len(states))
	var maxBound int64
	var g sample.Measure
	for j, st := range states {
		s, err := sample.FromState(st)
		if err != nil {
			return nil, fmt.Errorf("snapshot %d: %w", j, err)
		}
		h, ok := sample.MergeHandle(s)
		if !ok {
			return nil, fmt.Errorf("snapshot %d: %v is not a framework kind", j, spec.Kind)
		}
		p.pools[j] = h.Pool
		p.lens[j] = h.Pool.StreamLen()
		if p.lens[j] > math.MaxInt64-p.total {
			return nil, fmt.Errorf("snap: snapshot stream masses overflow int64")
		}
		p.total += p.lens[j]
		if h.NormalizerBound > maxBound {
			maxBound = h.NormalizerBound
		}
		if j == 0 {
			p.budget = h.Pool.GroupSize()
			g = h.G
		}
	}
	// One global ζ for every trial of every pool. For Lp with p > 1 it
	// comes from the per-snapshot Misra–Gries bounds (max over
	// item-disjoint shards: ‖f‖∞ = max_j ‖f⁽ʲ⁾‖∞ ≤ max_j Z_j);
	// everywhere else the measure's own bound at the total stream mass
	// is valid and data-independent.
	if spec.Kind == sample.KindLp && spec.P > 1 {
		if maxBound < 1 {
			maxBound = 1
		}
		p.zeta = spec.P * math.Pow(float64(maxBound), spec.P-1)
	} else {
		total := p.total
		if total < 1 {
			total = 1
		}
		p.zeta = g.Zeta(total)
	}
	return p, nil
}

// buildF0 union-merges the per-repetition states; draws restore a
// sampler over the merged state.
func (p *MergePlan) buildF0(states []sample.State) (*MergePlan, error) {
	spec := states[0].Spec
	base := states[0].F0Pool
	merged := f0.PoolState{GroupSize: base.GroupSize, Reps: make([]f0.SamplerState, len(base.Reps))}
	capT, _ := f0.UniverseSizes(spec.N)
	for i := range base.Reps {
		reps := make([]f0.SamplerState, len(states))
		for j, st := range states {
			if len(st.F0Pool.Reps) != len(base.Reps) {
				return nil, fmt.Errorf("snap: snapshot %d has %d repetitions, snapshot 0 has %d",
					j, len(st.F0Pool.Reps), len(base.Reps))
			}
			reps[j] = st.F0Pool.Reps[i]
		}
		rep, err := mergeF0Reps(capT, reps)
		if err != nil {
			return nil, fmt.Errorf("repetition %d: %w", i, err)
		}
		merged.Reps[i] = rep
	}
	return p.installSingle(sample.State{Spec: spec, F0Pool: &merged})
}

// mergeF0Reps merges one repetition across shards: exact counts add,
// the tracked union stays authoritative only while no shard
// overflowed and the union itself fits.
func mergeF0Reps(capT int, reps []f0.SamplerState) (f0.SamplerState, error) {
	out := f0.SamplerState{RngHi: reps[0].RngHi, RngLo: reps[0].RngLo}
	sCounts := make(map[int64]int64, len(reps[0].S))
	for _, e := range reps[0].S {
		sCounts[e.Item] = 0
	}
	tCounts := make(map[int64]int64)
	for _, rep := range reps {
		out.M += rep.M
		if rep.TFull {
			out.TFull = true
		}
		if len(rep.S) != len(sCounts) {
			return f0.SamplerState{}, fmt.Errorf("snap: subset sizes differ across snapshots")
		}
		for _, e := range rep.S {
			if _, ok := sCounts[e.Item]; !ok {
				return f0.SamplerState{}, fmt.Errorf("snap: random subsets differ across snapshots (F0 merge needs a shared seed)")
			}
			sCounts[e.Item] += e.Count
		}
		for _, e := range rep.T {
			tCounts[e.Item] += e.Count
		}
	}
	if !out.TFull && len(tCounts) > capT {
		out.TFull = true
	}
	out.T = f0.SortedItemCounts(tCounts)
	if len(out.T) > capT {
		// The tracked set is no longer consulted once full; keep the
		// state within the structure's capacity.
		out.T = out.T[:capT]
	}
	out.S = f0.SortedItemCounts(sCounts)
	return out, nil
}

// buildOracle composes min-hash states: the global argmin is the min
// of per-shard argmins under the shared PRF key.
func (p *MergePlan) buildOracle(states []sample.State) (*MergePlan, error) {
	spec := states[0].Spec
	out := *states[0].F0Oracle
	out.M, out.Freq, out.Seen = 0, 0, false
	for _, st := range states {
		o := st.F0Oracle
		out.M += o.M
		if !o.Seen {
			continue
		}
		if !out.Seen || o.Hash < out.Hash {
			out.Item, out.Hash, out.Freq, out.Seen = o.Item, o.Hash, o.Freq, true
		} else if o.Item == out.Item {
			// Same argmin on several shards (non-disjoint items): its
			// exact count is the sum of the per-shard counts.
			out.Freq += o.Freq
		}
	}
	return p.installSingle(sample.State{Spec: spec, F0Oracle: &out})
}

// buildMatrix restores each snapshot's matrix sampler and wires the
// m_j/m mixture over their instance pools. The trial budget is one
// shard's instance count r (identical across shards by compatibleSpecs)
// — exactly the single-machine sampler's trial count per query.
func (p *MergePlan) buildMatrix(states []sample.State) (*MergePlan, error) {
	p.matrix = make([]*matrixsampler.Sampler, len(states))
	p.lens = make([]int64, len(states))
	for j, st := range states {
		s, err := sample.FromState(st)
		if err != nil {
			return nil, fmt.Errorf("snapshot %d: %w", j, err)
		}
		h, ok := sample.MatrixMergeHandle(s)
		if !ok {
			return nil, fmt.Errorf("snapshot %d: %v is not a matrix kind", j, st.Spec.Kind)
		}
		p.matrix[j] = h
		p.lens[j] = h.StreamLen()
		if p.lens[j] > math.MaxInt64-p.total {
			return nil, fmt.Errorf("snap: snapshot stream masses overflow int64")
		}
		p.total += p.lens[j]
		if j == 0 {
			p.budget = h.InstanceCount()
		}
	}
	return p, nil
}

// buildTurnstile union-merges the strict-turnstile pools (syndromes
// add in the field, exact counters add, stream lengths add —
// everything is linear in the updates) and re-exports the absorbed
// state as the plan's merged state.
func (p *MergePlan) buildTurnstile(states []sample.State) (*MergePlan, error) {
	s, err := sample.FromState(states[0])
	if err != nil {
		return nil, fmt.Errorf("snapshot 0: %w", err)
	}
	pool, ok := sample.TurnstileMergeHandle(s)
	if !ok {
		return nil, fmt.Errorf("snapshot 0: %v is not the turnstile kind", states[0].Spec.Kind)
	}
	for j, st := range states[1:] {
		sj, err := sample.FromState(st)
		if err != nil {
			return nil, fmt.Errorf("snapshot %d: %w", j+1, err)
		}
		pj, ok := sample.TurnstileMergeHandle(sj)
		if !ok {
			return nil, fmt.Errorf("snapshot %d: %v is not the turnstile kind", j+1, st.Spec.Kind)
		}
		if err := pool.Absorb(pj); err != nil {
			return nil, fmt.Errorf("snapshot %d: %w", j+1, err)
		}
	}
	st, err := s.(sample.Stateful).SnapState()
	if err != nil {
		return nil, err
	}
	p.single = &st
	p.total = s.StreamLen()
	return p, nil
}

// buildMultipass concatenates the buffered update streams — an exact
// merge by definition, since the multipass sampler replays its buffer
// from scratch on every query — and keeps the union as the plan's
// merged state.
func (p *MergePlan) buildMultipass(states []sample.State) (*MergePlan, error) {
	var updates []stream.Update
	for j, st := range states {
		if st.Multipass == nil {
			return nil, fmt.Errorf("snapshot %d: %v state missing its payload", j, st.Spec.Kind)
		}
		updates = append(updates, st.Multipass.Updates...)
	}
	return p.installSingle(sample.State{Spec: states[0].Spec,
		Multipass: &sample.MultipassState{Updates: updates}})
}

// installSingle validates a merged single-sampler state by restoring
// it once (which also yields the merged stream mass) and caches the
// state for per-draw restores.
func (p *MergePlan) installSingle(st sample.State) (*MergePlan, error) {
	s, err := sample.FromState(st)
	if err != nil {
		return nil, err
	}
	p.single = &st
	p.total = s.StreamLen()
	return p, nil
}

// Kind returns the merged sampler's kind.
func (m *Merged) Kind() sample.Kind { return m.plan.kind }

// Shards returns the number of merged snapshots.
func (m *Merged) Shards() int { return m.plan.shards }

// StreamLen returns the total stream mass Σ m_j across snapshots.
func (m *Merged) StreamLen() int64 { return m.plan.total }

// Process panics: a merged sampler is query-only (its mixture weights
// are frozen at merge time).
func (m *Merged) Process(int64) { panic("snap: merged sampler is query-only") }

// ProcessBatch panics: a merged sampler is query-only.
func (m *Merged) ProcessBatch([]int64) { panic("snap: merged sampler is query-only") }

// Sample returns an item with exactly the law a single truly perfect
// sampler would have on the concatenated stream, ok=false on FAIL.
func (m *Merged) Sample() (sample.Outcome, bool) {
	outs, n := m.SampleK(1)
	if n == 0 {
		return sample.Outcome{}, false
	}
	return outs[0], true
}

// SampleK returns up to k mutually independent merged samples, one per
// provisioned query group (k is clamped like everywhere else in the
// library). An empty merged stream succeeds with k ⊥ outcomes.
func (m *Merged) SampleK(k int) ([]sample.Outcome, int) {
	if k < 1 {
		panic("snap: SampleK needs k ≥ 1")
	}
	if m.single != nil {
		return m.single.SampleK(k)
	}
	if m.plan.matrix != nil {
		return m.plan.sampleMatrix(m.src)
	}
	return m.plan.sampleFramework(m.src, k)
}

// drawSnapshot picks snapshot j with probability lens[j]/total via a
// uniform 64-bit global position draw.
func drawSnapshot(src *rng.PCG, lens []int64, total int64) int {
	x := src.Int63n(total)
	for j, l := range lens {
		if x < l {
			return j
		}
		x -= l
	}
	return len(lens) - 1 // unreachable: Σ lens == total
}

// BitsUsed reports the live size of the merged structure.
func (m *Merged) BitsUsed() int64 {
	if m.single != nil {
		return m.single.BitsUsed()
	}
	return m.plan.bitsUsed()
}
