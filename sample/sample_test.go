package sample

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/stream"
)

// smoke runs a Sampler over a workload and checks basic contract
// properties: no ⊥ on non-empty streams, sampled items are in-support,
// and FAIL stays below the bound.
func smoke(t *testing.T, mk func(seed uint64) Sampler, items []int64,
	reps int, maxFail float64) stats.Histogram {
	t.Helper()
	freq := stream.Frequencies(items)
	h := stats.Histogram{}
	fails := 0
	for rep := 0; rep < reps; rep++ {
		s := mk(uint64(rep) + 1)
		for _, it := range items {
			s.Process(it)
		}
		out, ok := s.Sample()
		if !ok {
			fails++
			continue
		}
		if out.Bottom {
			t.Fatal("⊥ on non-empty stream")
		}
		if freq[out.Item] == 0 {
			t.Fatalf("sampled item %d outside support", out.Item)
		}
		h.Add(out.Item)
	}
	if frac := float64(fails) / float64(reps); frac > maxFail {
		t.Fatalf("FAIL rate %v exceeds %v", frac, maxFail)
	}
	return h
}

func workload(seed uint64) []int64 {
	g := stream.NewGenerator(rng.New(seed))
	return g.Zipf(24, 400, 1.1)
}

func TestNewLpVariants(t *testing.T) {
	items := workload(1)
	for _, p := range []float64{0.5, 1, 1.5, 2} {
		p := p
		smoke(t, func(seed uint64) Sampler {
			return NewLp(p, 24, 400, 0.2, seed)
		}, items, 500, 0.25)
	}
}

func TestNewL1AlwaysSucceeds(t *testing.T) {
	items := workload(2)
	smoke(t, func(seed uint64) Sampler { return NewL1(0.1, seed) },
		items, 300, 0.0)
}

func TestNewMEstimators(t *testing.T) {
	items := workload(3)
	for _, g := range []Measure{
		MeasureL1L2(), MeasureFair(2), MeasureHuber(3),
		MeasureSqrt(), MeasureLog1p(),
	} {
		g := g
		smoke(t, func(seed uint64) Sampler {
			return NewMEstimator(g, int64(len(items)), 0.1, seed)
		}, items, 300, 0.15)
	}
}

func TestNewF0Variants(t *testing.T) {
	items := workload(4)
	smoke(t, func(seed uint64) Sampler { return NewF0(1024, 0.1, seed) },
		items, 300, 0.1)
	smoke(t, func(seed uint64) Sampler { return NewF0Oracle(seed) },
		items, 300, 0.0)
}

func TestNewF0ReportsFrequency(t *testing.T) {
	items := workload(5)
	freq := stream.Frequencies(items)
	s := NewF0(1024, 0.1, 7)
	for _, it := range items {
		s.Process(it)
	}
	out, ok := s.Sample()
	if !ok {
		t.Fatal("F0 failed")
	}
	if out.Freq != freq[out.Item] {
		t.Fatalf("reported freq %d, want %d", out.Freq, freq[out.Item])
	}
}

func TestNewTukey(t *testing.T) {
	items := workload(6)
	smoke(t, func(seed uint64) Sampler {
		return NewTukey(3, 1024, 0.2, seed)
	}, items, 300, 0.3)
}

func TestWindowSamplers(t *testing.T) {
	g := stream.NewGenerator(rng.New(7))
	items := append(g.Zipf(8, 600, 1.4), g.Zipf(12, 200, 1.0)...)
	const w = 200
	winFreq := stream.WindowFrequencies(items, w)
	for name, mk := range map[string]func(uint64) Sampler{
		"mest": func(seed uint64) Sampler {
			return NewWindowMEstimator(MeasureHuber(2), w, 0.1, seed)
		},
		"lp-truly": func(seed uint64) Sampler {
			return NewWindowLp(2, 32, w, 0.2, true, seed)
		},
		"f0": func(seed uint64) Sampler {
			return NewWindowF0(1024, w, 1, 0.1, seed)
		},
		"tukey": func(seed uint64) Sampler {
			return NewWindowTukey(2, 1024, w, 0.2, seed)
		},
	} {
		fails := 0
		for rep := 0; rep < 120; rep++ {
			s := mk(uint64(rep) + 1)
			for _, it := range items {
				s.Process(it)
			}
			out, ok := s.Sample()
			if !ok {
				fails++
				continue
			}
			if winFreq[out.Item] == 0 {
				t.Fatalf("%s: sampled expired item %d", name, out.Item)
			}
		}
		if fails > 60 {
			t.Fatalf("%s: too many FAILs %d/120", name, fails)
		}
	}
}

func TestRandomOrderSamplers(t *testing.T) {
	g := stream.NewGenerator(rng.New(8))
	freq := map[int64]int64{1: 40, 2: 25, 3: 15}
	items := g.FromFrequencies(freq)
	okCount := 0
	for rep := 0; rep < 300; rep++ {
		s := NewRandomOrderL2(int64(len(items)), 64, uint64(rep)+1)
		for _, it := range g.RandomOrder(items) {
			s.Process(it)
		}
		if out, ok := s.Sample(); ok {
			okCount++
			if freq[out.Item] == 0 {
				t.Fatalf("RO L2 sampled unknown item %d", out.Item)
			}
		}
	}
	if okCount < 150 {
		t.Fatalf("RO L2 succeeded only %d/300", okCount)
	}
	s3 := NewRandomOrderLp(3, int64(len(items)), 3)
	for _, it := range g.RandomOrder(items) {
		s3.Process(it)
	}
	if out, ok := s3.Sample(); ok && freq[out.Item] == 0 {
		t.Fatalf("RO L3 sampled unknown item %d", out.Item)
	}
}

func TestMatrixSamplers(t *testing.T) {
	src := rng.New(9)
	const d = 4
	for _, mk := range []func() *MatrixSampler{
		func() *MatrixSampler { return NewMatrixRowsL1(d, 500, 0.1, 1) },
		func() *MatrixSampler { return NewMatrixRowsL2(d, 500, 0.1, 1) },
	} {
		s := mk()
		for i := 0; i < 500; i++ {
			s.Process(MatrixEntry{Row: int64(src.Intn(10)), Col: src.Intn(d), Delta: 1})
		}
		if _, ok := s.Sample(); !ok {
			t.Fatal("matrix sampler failed")
		}
	}
}

func TestTurnstileF0(t *testing.T) {
	s := NewTurnstileF0(256, 0.1, 1)
	s.Process(Update{Item: 5, Delta: 3})
	s.Process(Update{Item: 9, Delta: 2})
	s.Process(Update{Item: 5, Delta: -3})
	out, ok := s.Sample()
	if !ok || out.Item != 9 || out.Freq != 2 {
		t.Fatalf("turnstile F0: %+v %v", out, ok)
	}
}

func TestMultipassLp(t *testing.T) {
	g := stream.NewGenerator(rng.New(10))
	sl := g.StrictTurnstile(64, 400, 1.2, 0.3)
	mp := NewMultipassLp(2, 0.5, 0.2, 1)
	out, ok := mp.Sample(sl)
	if !ok {
		t.Fatal("multipass failed")
	}
	final := stream.FrequencyVector(sl)
	if !out.Bottom && final[out.Item] == 0 {
		t.Fatalf("multipass sampled zero item %d", out.Item)
	}
	if mp.Passes() < 2 {
		t.Fatalf("suspicious pass count %d", mp.Passes())
	}
}

func TestEmptyStreamBottom(t *testing.T) {
	for _, s := range []Sampler{
		NewLp(2, 16, 16, 0.2, 1),
		NewL1(0.1, 1),
		NewMEstimator(MeasureL1L2(), 100, 0.1, 1),
		NewF0(64, 0.1, 1),
		NewWindowMEstimator(MeasureHuber(2), 16, 0.1, 1),
	} {
		out, ok := s.Sample()
		if !ok || !out.Bottom {
			t.Fatalf("%T: empty stream gave %+v %v", s, out, ok)
		}
	}
}

func TestBitsUsedNonZero(t *testing.T) {
	items := workload(11)
	for _, s := range []Sampler{
		NewLp(2, 24, 400, 0.2, 1),
		NewF0(1024, 0.1, 1),
		NewWindowF0(1024, 100, 1, 0.1, 1),
		NewRandomOrderL2(400, 64, 1),
	} {
		for _, it := range items {
			s.Process(it)
		}
		if s.BitsUsed() <= 0 {
			t.Fatalf("%T reports no space", s)
		}
	}
}

func TestL2DistributionThroughFacade(t *testing.T) {
	items := workload(12)
	target := stats.GDistribution(stream.Frequencies(items),
		func(f int64) float64 { return float64(f * f) })
	h := smoke(t, func(seed uint64) Sampler {
		return NewLp(2, 24, 400, 0.2, seed)
	}, items, 20000, 0.25)
	if _, _, p := stats.ChiSquare(h, target, 5); p < 1e-4 {
		t.Fatalf("facade L2 law rejected: %s", stats.Summary("facade", h, target))
	}
}
