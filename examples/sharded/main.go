// Command sharded demonstrates the sample/shard coordinator: a stream
// is fanned out across P worker goroutines, each owning an independent
// truly perfect sampler pool, and the pools are merged at query time
// with *zero* distributional cost — the merged empirical law lands on
// the exact single-machine law G(f_i)/F_G.
//
// This is the paper's composition property (§1 of arXiv:2108.12017)
// turned into an architecture: because every per-shard sample law is
// exact, combining shards needs no reconciliation, no ε accounting,
// and no resampling — only the m_j/m shard mixture that sample/shard
// implements.
package main

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/rng"
	"repro/internal/stream"
	"repro/sample"
	"repro/sample/shard"
)

func main() {
	const (
		n     = 1 << 12 // universe
		m     = 1 << 21 // ingest-phase stream length
		lawM  = 4000    // law-phase stream length
		reps  = 8000    // independent coordinators for the law check
		delta = 0.1
	)

	// --- Part 1: ingest throughput --------------------------------------
	gen := stream.NewGenerator(rng.New(99))
	items := gen.Zipf(n, m, 1.1)

	single := sample.NewLp(2, n, m, delta, 1)
	start := time.Now()
	for _, it := range items {
		single.Process(it)
	}
	singleNs := float64(time.Since(start).Nanoseconds()) / float64(m)

	shards := runtime.GOMAXPROCS(0)
	if shards > 8 {
		shards = 8
	}
	c := shard.NewLp(2, n, m, delta, 1, shard.Config{Shards: shards})
	start = time.Now()
	stream.ForEachChunk(items, 8192, c.ProcessBatch)
	c.Drain()
	shardNs := float64(time.Since(start).Nanoseconds()) / float64(m)
	fmt.Printf("ingest %d updates (universe %d, GOMAXPROCS %d):\n",
		m, n, runtime.GOMAXPROCS(0))
	fmt.Printf("  single sampler, Process:        %6.1f ns/update\n", singleNs)
	fmt.Printf("  %d-shard coordinator, batched:   %6.1f ns/update (%.2fx)\n",
		shards, shardNs, singleNs/shardNs)

	// Both answer from the same law; show one merged sample.
	if out, ok := c.Sample(); ok {
		fmt.Printf("  one merged L2 sample: item %d\n", out.Item)
	}
	c.Close()

	// --- Part 2: the merged law is the single-machine law ----------------
	lawItems := gen.Zipf(24, lawM, 1.3)
	freq := stream.Frequencies(lawItems)
	counts := map[int64]int{}
	fails := 0
	for rep := 0; rep < reps; rep++ {
		c := shard.NewLp(2, 24, lawM, delta, uint64(rep)+1,
			shard.Config{Shards: 4, BatchSize: 512})
		c.ProcessBatch(lawItems)
		out, ok := c.Sample()
		c.Close()
		if !ok {
			fails++
			continue
		}
		counts[out.Item]++
	}

	var f2 float64
	for _, f := range freq {
		f2 += float64(f) * float64(f)
	}
	var keys []int64
	for k := range freq {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return freq[keys[a]] > freq[keys[b]] })
	total := reps - fails
	fmt.Printf("\n4-shard merged sampling, %d samples (%d FAIL):\n", total, fails)
	fmt.Printf("%6s %8s %10s %10s\n", "item", "freq", "empirical", "exact")
	for _, k := range keys[:6] {
		emp := float64(counts[k]) / float64(total)
		exact := float64(freq[k]) * float64(freq[k]) / f2
		fmt.Printf("%6d %8d %10.4f %10.4f\n", k, freq[k], emp, exact)
	}
	fmt.Println("\nThe merged law is exactly the single-machine f²/F₂ law — sharding")
	fmt.Println("is an operational knob, not a statistical one. That is what truly")
	fmt.Println("perfect (ε = γ = 0) buys: samples compose across machines for free.")
}
