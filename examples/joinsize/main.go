// Command joinsize demonstrates the database application behind the
// paper's selectivity-estimation citations ([LNS90, HS92, HNSS96] in
// §1): estimating the self-join size of a streamed relation from truly
// perfect samples.
//
// The self-join size of an attribute column with frequencies f is
// F₂ = Σ_i f_i². With a truly perfect L1 sampler (P[i] = f_i/m exactly),
// the Hansen–Hurwitz estimator F̂₂ = m·avg_k f_{i_k} is exactly unbiased:
// E[m·f_i] = m·Σ_i (f_i/m)·f_i = F₂. The demo sweeps the sample budget K
// and shows the relative error shrinking like 1/√K with no bias floor —
// which holds *because* the sample law is exact.
package main

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/stream"
	"repro/sample"
)

func main() {
	const (
		n = 1 << 10
		m = 40000
	)
	gen := stream.NewGenerator(rng.New(5))
	items := gen.Zipf(n, m, 1.3)
	freq := stream.Frequencies(items)
	var f2 float64
	for _, f := range freq {
		f2 += float64(f) * float64(f)
	}

	fmt.Printf("relation: n=%d, m=%d, true self-join size F2 = %.0f\n\n", n, m, f2)
	fmt.Printf("%8s %14s %12s\n", "K", "estimate", "rel.err")
	for _, k := range []int{8, 32, 128, 512} {
		est := estimate(items, n, m, k)
		fmt.Printf("%8d %14.0f %12.4f\n", k, est, math.Abs(est-f2)/f2)
	}
	fmt.Println("\nEach L1 sample i arrives with probability f_i/m, so m·f_i is an")
	fmt.Println("unbiased per-sample estimate of F2 — but only because the sample")
	fmt.Println("law is exact. A γ-biased sampler shifts every estimate by Θ(γ·m²).")
}

// estimate draws K truly perfect L1 samples and applies the
// Hansen–Hurwitz estimator: under P[i] = f_i/m,
//
//	E[m·f_i] = m·Σ_i (f_i/m)·f_i = F₂,
//
// so averaging m·f_{i_k} over K independent samples estimates the
// self-join size without ever materializing the frequency vector. The
// per-sample frequency f_{i_k} is recovered exactly with one counter per
// drawn key (K counters total — still sublinear).
func estimate(items []int64, n int64, m, k int) float64 {
	sum := 0.0
	for j := 0; j < k; j++ {
		s := sample.NewL1(0.05, uint64(j)+1)
		for _, it := range items {
			s.Process(it)
		}
		out, ok := s.Sample()
		if !ok || out.Bottom {
			continue
		}
		// One exact counter for the drawn key (a second pass in a real
		// system; here the trace is in memory).
		var fi float64
		for _, it := range items {
			if it == out.Item {
				fi++
			}
		}
		sum += float64(m) * fi
	}
	return sum / float64(k)
}
