// Command cluster runs a full serving topology in one process: three
// tpserve-style nodes (each a sharded coordinator behind HTTP) plus an
// aggregator, wired over real loopback listeners. It demonstrates the
// three claims DESIGN.md §5 makes for the serving layer:
//
//  1. Exactness: the aggregator's answers over the fleet's snapshots
//     follow exactly the single-sampler law on the union stream. The
//     demo provisions 256 disjoint query groups per node, so one
//     SampleK(256) yields 256 mutually independent global draws — the
//     empirical TV distance to the exact law sits at the sampling
//     noise floor.
//  2. Durability: killing a node and restoring it from its snapshot
//     store brings back the exact stream mass it had checkpointed.
//  3. Zero coupling: nodes never talk to each other; the only shared
//     state is snapshot bytes in flight.
//
// It also walks the observability layer (DESIGN.md §7): a request ID
// stamped on an aggregator query shows up in node 0's request log —
// the fan-out forwards it — and both tiers' /metrics answer in the
// Prometheus text format.
package main

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/sample/serve"
	"repro/sample/shard"
)

const (
	nodes    = 3
	queries  = 256
	items    = 30000
	universe = 64
)

func main() {
	gen := stream.NewGenerator(rng.New(7))
	updates := gen.Zipf(universe, items, 1.3)

	// --- the fleet --------------------------------------------------------
	fmt.Printf("starting %d nodes + 1 aggregator on loopback…\n", nodes)
	var urls []string
	var nodeHandles []*serve.Node
	var servers []*http.Server
	stores := make([]*serve.DirStore, nodes)
	for i := 0; i < nodes; i++ {
		dir := mustTempDir(i)
		defer os.RemoveAll(dir)
		st, err := serve.NewDirStore(dir)
		if err != nil {
			fail(err)
		}
		stores[i] = st
		// L1 is exact under ANY item split (linear G); nonlinear measures
		// would need item-disjoint routing across nodes, same as shards.
		coord := shard.NewL1(0.05, uint64(i)+1, // distinct seed per node
			shard.Config{Shards: 2, Queries: queries})
		nodeCfg := serve.NodeConfig{Store: st}
		if i == 0 {
			// Node 0 logs every request it serves (Debug level includes the
			// 2xx lines), so the aggregator fan-out's forwarded request ID
			// is visible below.
			nodeCfg.Logger = slog.New(slog.NewTextHandler(os.Stdout,
				&slog.HandlerOptions{Level: slog.LevelDebug}))
		}
		node := serve.NewNode(coord, nodeCfg)
		url, srv := listen(node.Handler())
		urls = append(urls, url)
		nodeHandles = append(nodeHandles, node)
		servers = append(servers, srv)
	}
	agg := serve.NewAggregator(99, urls...)
	aggURL, aggSrv := listen(agg.Handler())
	defer aggSrv.Close()

	// --- ingest over HTTP, round-robin across nodes -----------------------
	for i := 0; i < nodes; i++ {
		var part []int64
		for j := i; j < len(updates); j += nodes {
			part = append(part, updates[j])
		}
		if _, err := serve.NewClient(urls[i]).Ingest(part); err != nil {
			fail(err)
		}
	}

	// --- global law through the aggregator --------------------------------
	cl := serve.NewClient(aggURL)
	resp, err := cl.SampleK(queries)
	if err != nil {
		fail(err)
	}
	fmt.Printf("aggregator merged %d nodes / %d pools, global mass %d\n",
		resp.Nodes, resp.Pools, resp.StreamLen)
	h := stats.Histogram{}
	for _, o := range resp.Outcomes {
		h.Add(o.Item)
	}
	freq := stream.Frequencies(updates)
	target := stats.GDistribution(freq, func(f int64) float64 { return float64(f) })
	fmt.Printf("  %s\n", stats.Summary("global L1", h, target))
	fmt.Printf("  noise floor E[TV] at N=%d: %.4f\n", h.Total(), stats.ExpectedTV(target, h.Total()))
	fmt.Println("  (the", resp.Count, "draws are mutually independent — disjoint query groups —")
	fmt.Println("   and each follows exactly the single-sampler law on the union stream)")

	// --- observability: tracing + metrics ---------------------------------
	// A client-chosen X-Request-ID rides the aggregator query, the
	// fan-out forwards it to every node (node 0's request log above
	// shows request_id=cluster-demo-1 on its GET /snapshot), and the
	// response echoes it back.
	fmt.Println("\ntracing one aggregator query as cluster-demo-1…")
	req, err := http.NewRequest(http.MethodGet, aggURL+"/sample", nil)
	if err != nil {
		fail(err)
	}
	req.Header.Set("X-Request-ID", "cluster-demo-1")
	traced, err := http.DefaultClient.Do(req)
	if err != nil {
		fail(err)
	}
	traced.Body.Close()
	fmt.Printf("  aggregator echoed X-Request-ID: %s\n", traced.Header.Get("X-Request-ID"))

	// Both tiers serve their registries on GET /metrics in the
	// Prometheus text format; print a few series.
	nodeMet, err := serve.NewClient(urls[0]).Metrics()
	if err != nil {
		fail(err)
	}
	aggMet, err := cl.Metrics()
	if err != nil {
		fail(err)
	}
	fmt.Println("  node 0 /metrics (excerpt):")
	printMetrics(nodeMet, "tp_ingest_requests_total", "tp_ingest_items_total", "tp_snapshot_serves_total")
	fmt.Println("  aggregator /metrics (excerpt):")
	printMetrics(aggMet, "tp_agg_queries_total", "tp_agg_full_fetches_total", "tp_agg_cache_hits_total")

	// --- kill a node, restore it from its store ---------------------------
	fmt.Println("\nkilling node 0 and restoring it from its snapshot store…")
	if _, err := nodeHandles[0].Checkpoint(); err != nil {
		fail(err)
	}
	servers[0].Close()
	was := nodeHandles[0].Coordinator().StreamLen()
	nodeHandles[0].Coordinator().Close() // crash: no graceful Close, no final snapshot

	restored, skipped, err := serve.Restore(stores[0], serve.NodeConfig{})
	if err != nil {
		fail(err)
	}
	for _, sk := range skipped {
		fmt.Printf("  (skipped checkpoint %s: %v)\n", sk.Name, sk.Err)
	}
	url, srv := listen(restored.Handler())
	defer srv.Close()
	st, err := serve.NewClient(url).Stats()
	if err != nil {
		fail(err)
	}
	fmt.Printf("  restored node serves %s again: stream mass %d (was %d) — bit-for-bit\n",
		st.Sampler, st.StreamLen, was)

	// The aggregator keeps answering against the surviving fleet once the
	// restored node takes the dead one's place.
	agg2 := serve.NewAggregator(100, url, urls[1], urls[2])
	merged, pools, err := agg2.Merge()
	if err != nil {
		fail(err)
	}
	out, ok := merged.Sample()
	fmt.Printf("  post-restore global sample over %d pools (mass %d): item %d ok=%v\n",
		pools, merged.StreamLen(), out.Item, ok)

	for i, n := range nodeHandles[1:] {
		servers[i+1].Close()
		_ = n.Close()
	}
	_ = restored.Close()
}

// printMetrics prints the sample lines of the named families from a
// Prometheus text exposition.
func printMetrics(exposition string, families ...string) {
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		for _, f := range families {
			if strings.HasPrefix(line, f) {
				fmt.Printf("    %s\n", line)
			}
		}
	}
}

// listen serves h on a fresh loopback port and returns its base URL.
func listen(h http.Handler) (string, *http.Server) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), srv
}

func mustTempDir(i int) string {
	dir, err := os.MkdirTemp("", fmt.Sprintf("cluster-node%d-", i))
	if err != nil {
		fail(err)
	}
	return dir
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cluster:", err)
	os.Exit(1)
}
