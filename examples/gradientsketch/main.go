// Command gradientsketch demonstrates the paper's optimization
// motivation (§1): using an Lp sampler as an *unbiased* importance
// sampler for gradient sketches. A worker holds a dense gradient g and
// communicates only K sampled coordinates; the receiver reconstructs
// ⟨q, |g|⟩ for a query vector q by importance weighting. With a truly
// perfect sampler the estimator is exactly unbiased, so its error
// decays like 1/√K forever. A sampler with additive bias γ (the
// 1/poly(n) drift of a merely perfect sampler, amplified here for
// visibility) hits a bias floor that no number of samples crosses —
// the "large drift" failure mode the paper cites for SGD and
// interior-point pipelines ([HPGS16]).
package main

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/sample"
)

const dim = 64

func main() {
	src := rng.New(31)
	// A fixed integer gradient magnitude vector with skew, and a query
	// vector that weighs a coordinate subset.
	grad := make([]int64, dim)
	query := make([]float64, dim)
	var total int64
	for i := range grad {
		grad[i] = int64(src.Intn(30) + 1)
		if i%7 == 0 {
			grad[i] *= 8 // heavy coordinates
		}
		total += grad[i]
		if i%4 == 0 {
			query[i] = 1 // the subset a biased sampler under-reports
		}
	}
	want := 0.0
	for i := range grad {
		want += query[i] * float64(grad[i])
	}

	fmt.Println("importance-sampled estimate of ⟨q,|g|⟩ vs sample budget K")
	fmt.Printf("%8s  %16s  %16s\n", "K", "rel.err γ=0", "rel.err γ=0.1")
	seed := uint64(1)
	const avgRuns = 8
	for _, k := range []int{16, 64, 256, 1024, 4096} {
		var e0, eb float64
		for r := 0; r < avgRuns; r++ {
			e0 += math.Abs(estimate(grad, query, total, k, 0, src, &seed)-want) / want
			eb += math.Abs(estimate(grad, query, total, k, 0.1, src, &seed)-want) / want
		}
		fmt.Printf("%8d  %16.4f  %16.4f\n", k, e0/avgRuns, eb/avgRuns)
	}
	fmt.Println()
	fmt.Println("γ=0 keeps shrinking like 1/√K; γ>0 plateaus at its bias floor.")
}

// estimate draws k coordinates from an L1 sampler over |g| and averages
// query[i]·total/|g_i| · |g_i| = query[i]·total — the standard
// importance estimator of ⟨q,|g|⟩. gamma > 0 models a biased sampler
// that, with probability gamma, re-routes a sample away from the
// query's support (a support-dependent additive distortion).
func estimate(grad []int64, query []float64, total int64, k int,
	gamma float64, src *rng.PCG, seed *uint64) float64 {
	sum := 0.0
	drawn := 0
	for drawn < k {
		// One fresh sampler per draw keeps the K draws independent
		// (repeated Sample calls on one sampler share reservoir state).
		*seed++
		s := sample.NewLp(1, dim, total, 0.05, *seed)
		for i, g := range grad {
			for j := int64(0); j < g; j++ {
				s.Process(int64(i))
			}
		}
		out, ok := s.Sample()
		if !ok || out.Bottom {
			continue
		}
		i := out.Item
		if gamma > 0 && query[i] > 0 && src.Bernoulli(gamma) {
			i = (i + 1) % dim // biased: dodge the query support
		}
		// P[i] = g_i/total exactly for the truly perfect sampler.
		sum += query[i] * float64(total)
		drawn++
	}
	return sum / float64(k)
}
