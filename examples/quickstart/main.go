// Command quickstart is a 60-second tour of the public API: build a
// skewed stream, draw truly perfect L2 samples from it, and compare the
// empirical sample distribution against the exact f²/F₂ law.
package main

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/stream"
	"repro/sample"
)

func main() {
	const (
		n    = 32    // universe size
		m    = 5000  // stream length
		reps = 20000 // independent samplers (fresh coins each)
	)

	// A Zipf-skewed insertion-only stream: a few heavy items, a long tail.
	gen := stream.NewGenerator(rng.New(7))
	items := gen.Zipf(n, m, 1.2)
	freq := stream.Frequencies(items)

	// Draw one truly perfect L2 sample per independent sampler.
	counts := map[int64]int{}
	fails := 0
	for rep := 0; rep < reps; rep++ {
		s := sample.NewLp(2, n, m, 0.1, uint64(rep)+1)
		for _, it := range items {
			s.Process(it)
		}
		out, ok := s.Sample()
		if !ok {
			fails++
			continue
		}
		counts[out.Item]++
	}

	// Compare against the exact law f_i²/F₂.
	var f2 float64
	for _, f := range freq {
		f2 += float64(f) * float64(f)
	}
	var keys []int64
	for k := range freq {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return freq[keys[a]] > freq[keys[b]] })

	total := reps - fails
	fmt.Printf("truly perfect L2 sampling: %d samples (%d FAIL)\n\n", total, fails)
	fmt.Printf("%6s %8s %10s %10s\n", "item", "freq", "empirical", "exact")
	for _, k := range keys[:8] {
		emp := float64(counts[k]) / float64(total)
		exact := float64(freq[k]) * float64(freq[k]) / f2
		fmt.Printf("%6d %8d %10.4f %10.4f\n", k, freq[k], emp, exact)
	}
	fmt.Println("\nSampling never deviates from f²/F₂ beyond statistical noise —")
	fmt.Println("that is what \"truly perfect\" (ε = γ = 0) means.")
}
