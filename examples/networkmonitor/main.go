// Command networkmonitor demonstrates the paper's motivating network
// scenario (§1): sampling heavy flows from a sliding window of recent
// traffic. A synthetic packet stream alternates between a steady
// background and a transient DDoS-like burst; the sliding-window L2
// sampler tracks only the *active* window, so the burst dominates the
// samples while it is inside the window and vanishes from them as soon
// as it expires — with zero residual bias from the expired traffic.
package main

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/stream"
	"repro/sample"
)

const (
	nFlows = 1 << 10 // flow identifier universe
	window = 2000    // packets per monitoring window
)

// phase describes one traffic regime of the synthetic trace.
type phase struct {
	name    string
	packets int
	gen     func(g *stream.Generator) []int64
}

func main() {
	gen := stream.NewGenerator(rng.New(42))
	phases := []phase{
		{"background", 4000, func(g *stream.Generator) []int64 {
			return g.Zipf(nFlows, 4000, 1.05)
		}},
		{"burst (flow 7 floods)", 3000, func(g *stream.Generator) []int64 {
			return g.Bursty(nFlows, 3000, 0.6)
		}},
		{"recovery", 4000, func(g *stream.Generator) []int64 {
			return g.Zipf(nFlows, 4000, 1.05)
		}},
	}

	// Many independent window samplers give a per-phase sample panel.
	const panel = 400
	samplers := make([]sample.Sampler, panel)
	for i := range samplers {
		samplers[i] = sample.NewWindowLp(2, nFlows, window, 0.2, true, uint64(i)+1)
	}

	var trace []int64
	for _, ph := range phases {
		pkts := ph.gen(gen)
		trace = append(trace, pkts...)
		for _, s := range samplers {
			for _, p := range pkts {
				s.Process(p)
			}
		}
		report(ph.name, samplers, trace)
	}
}

// report prints the panel's current top sampled flows against the true
// in-window L2 shares.
func report(phase string, samplers []sample.Sampler, trace []int64) {
	counts := map[int64]int{}
	fails := 0
	for _, s := range samplers {
		out, ok := s.Sample()
		if !ok {
			fails++
			continue
		}
		counts[out.Item]++
	}
	winFreq := stream.WindowFrequencies(trace, window)
	var f2 float64
	for _, f := range winFreq {
		f2 += float64(f) * float64(f)
	}
	// Top sampled flow.
	var top int64 = -1
	for fl, c := range counts {
		if top < 0 || c > counts[top] {
			top = fl
		}
	}
	fmt.Printf("after %-22s panel=%d fail=%d", phase, len(samplers), fails)
	if top >= 0 {
		emp := float64(counts[top]) / float64(len(samplers)-fails)
		exact := float64(winFreq[top]) * float64(winFreq[top]) / f2
		fmt.Printf("  top flow %4d: sampled %.3f, exact L2 share %.3f", top, emp, exact)
	}
	fmt.Println()
}
