// Command queryserver demonstrates the multi-sample query engine under
// concurrent load: one producer goroutine ingests a Zipf stream into a
// sharded coordinator while several query goroutines — the "serving
// tier" — call SampleK for batches of independent samples, concurrently
// with ingestion and with each other.
//
// Two properties carry the demo:
//
//   - SampleK(k) answers k *mutually independent* truly perfect samples
//     per query (disjoint per-query instance groups, §3.1 of
//     arXiv:2108.12017) — no k-coordinator rebuild, no shared reservoir
//     positions;
//   - queries use the coordinator's drain-then-snapshot read path, so
//     they are safe from any goroutine and the merge itself runs off
//     the ingestion lock.
//
// The final table checks the served samples against the exact f_i/m
// law of everything ingested: heavy concurrency moves no probability
// mass anywhere.
package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/stream"
	"repro/sample/shard"
)

func main() {
	const (
		n       = 1 << 10 // universe
		m       = 1 << 21 // stream length
		k       = 16      // independent samples per query
		servers = 4       // concurrent query goroutines
		chunk   = 4096
	)

	gen := stream.NewGenerator(rng.New(42))
	items := gen.Zipf(n, m, 1.2)

	c := shard.NewL1(0.05, 7, shard.Config{Shards: 4, Queries: k})
	defer c.Close()

	// Serving tier: each server loops SampleK(k) until ingestion ends.
	// A mid-ingestion query answers with the exact law of the prefix
	// drained at its snapshot — a moving target, so these draws are
	// counted but not pooled into the final-law table below.
	var (
		mu      sync.Mutex
		queries int64
		draws   int64
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < servers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				outs, got := c.SampleK(k)
				for _, o := range outs {
					if !o.Bottom && (o.Item < 0 || o.Item >= n) {
						panic("served item outside universe")
					}
				}
				mu.Lock()
				queries++
				draws += int64(got)
				mu.Unlock()
			}
		}()
	}

	// Producer: batched ingestion, single goroutine.
	start := time.Now()
	stream.ForEachChunk(items, chunk, c.ProcessBatch)
	c.Drain()
	ingest := time.Since(start)
	close(stop)
	wg.Wait()

	fmt.Printf("ingested %d updates in %v (%.0f ns/update) with %d query servers live\n",
		m, ingest.Round(time.Millisecond),
		float64(ingest.Nanoseconds())/float64(m), servers)
	fmt.Printf("served %d queries × up to %d independent samples = %d draws during ingestion\n",
		queries, k, draws)

	// Post-ingest serving burst: query throughput once the stream is
	// fully drained. (Draws from *repeated* queries on one coordinator
	// share reservoir positions, so they are deliberately not pooled
	// into the law table below — independence holds within one SampleK
	// answer, which is exactly what the table measures.)
	start = time.Now()
	const burst = 2000
	for q := 0; q < burst; q++ {
		c.SampleK(k)
	}
	fmt.Printf("post-ingest burst: %d queries in %v (%.1f µs/query, %d samples each)\n",
		burst, time.Since(start).Round(time.Millisecond),
		float64(time.Since(start).Microseconds())/burst, k)

	// The served law: pool the k draws of one SampleK answer from each
	// of many independent coordinators — every draw in the pool is then
	// mutually independent, and the empirical law must land on the
	// exact L1 law f_i/m. Concurrency and multi-sampling are
	// operational knobs, not statistical ones.
	const (
		lawM    = 20000
		lawReps = 400
	)
	lawItems := gen.Zipf(32, lawM, 1.3)
	counts := map[int64]int64{}
	var total int64
	for rep := 0; rep < lawReps; rep++ {
		lc := shard.NewL1(0.05, uint64(rep)+1,
			shard.Config{Shards: 4, BatchSize: 1024, Queries: k})
		lc.ProcessBatch(lawItems)
		outs, _ := lc.SampleK(k)
		lc.Close()
		for _, o := range outs {
			counts[o.Item]++
			total++
		}
	}
	freq := stream.Frequencies(lawItems)
	var keys []int64
	for it := range freq {
		keys = append(keys, it)
	}
	sort.Slice(keys, func(a, b int) bool { return freq[keys[a]] > freq[keys[b]] })
	fmt.Printf("\nserved-sample law vs exact f_i/m (%d coordinators × SampleK(%d) = %d draws):\n",
		lawReps, k, total)
	fmt.Printf("%6s %10s %10s %10s\n", "item", "freq", "served", "exact")
	for _, it := range keys[:6] {
		fmt.Printf("%6d %10d %10.4f %10.4f\n", it, freq[it],
			float64(counts[it])/float64(total), float64(freq[it])/float64(lawM))
	}
	fmt.Println("\nEvery draw within an answered query is an independent truly perfect")
	fmt.Println("sample: serving k samples costs one query, not k rebuilt samplers.")
}
