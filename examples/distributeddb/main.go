// Command distributeddb reproduces the paper's privacy/accuracy
// motivation (§1, "Truly Perfect Sampling"): when many independent
// samplers run on disjoint shards of a database, any per-sampler
// additive bias γ compounds across shards — the joint distribution of
// the samples drifts by ~γ·√shards in the onlooker's favor, enough to
// distinguish neighbouring databases once shards ≫ 1/γ². A truly
// perfect sampler (γ = 0) produces samples whose law is *identical*
// under the two databases, so no number of shards helps the onlooker.
//
// The γ = 0 column runs the repository's real truly perfect L1 sampler
// on real shard streams — and, since PR 3, through the real wire path:
// each shard checkpoints its sampler with sample/snap, the snapshot
// bytes travel to the aggregator, and the aggregator restores them
// before sampling, exactly as a multi-machine deployment would. The
// γ > 0 columns model the worst-case bias Definition 1.1 permits a
// non-truly-perfect sampler.
//
// A final section exercises snap.Merge: the aggregator combines the
// per-shard snapshots into ONE truly perfect global sampler whose law
// over the union database is exact — the composition property that
// makes the privacy argument work is the same one that makes
// distributed serving work.
package main

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/turnstile"
	"repro/sample"
	"repro/sample/snap"
)

func main() {
	fmt.Println("onlooker advantage distinguishing neighbouring databases")
	fmt.Println("from one sample per shard (0 = perfectly hidden)")
	fmt.Println("per-shard samples are round-tripped through the snapshot codec")
	fmt.Println()
	fmt.Printf("%8s  %14s  %12s  %12s\n",
		"shards", "γ=0 (real)", "γ=1e-2", "γ=5e-2")

	src := rng.New(99)
	seed := uint64(1)
	for _, shards := range []int{16, 64, 256, 1024} {
		fmt.Printf("%8d", shards)
		fmt.Printf("  %14.4f", advantageReal(src, &seed, shards))
		for _, gamma := range []float64{1e-2, 5e-2} {
			fmt.Printf("  %12.4f", advantageModel(src, shards, gamma))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("equality-game view (Theorem 1.2): bits a γ-error sampler must pay")
	fmt.Println("(n̂ = min{n/2, log2(1/16γ)}, universe n = 2^20):")
	for _, gamma := range []float64{1e-2, 1e-4, 1e-8, 0} {
		fmt.Printf("  γ=%-8v n̂ = %.0f bits\n",
			gamma, turnstile.EffectiveInstanceSize(1<<20, gamma))
	}

	mergedGlobalSample()
}

// shardStream builds the shard's records. The two neighbouring
// databases have the *same frequency vector* (they differ only in
// hidden payload attached to the records, which a G-sampler's output
// law may not depend on): a truly perfect sampler's output distribution
// is therefore identical under A and B — this is the "perfect security"
// property of §1 ([Dat16]). A sampler with additive error γ is allowed
// to leak the hidden bit through a ±γ tilt, and that is what the model
// columns quantify.
func shardStream(bool) []int64 {
	return []int64{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
}

// advantageReal runs the repository's truly perfect L1 sampler on each
// shard, ships the sampler state through the snapshot codec (the bytes
// a real deployment would put on the wire), restores it at the
// aggregator, and lets the onlooker apply the likelihood-ratio rule on
// the marked item's appearance counts. Because restore is bit-for-bit
// and the output law is exactly f/‖f‖₁ under both databases, the
// counts are identically distributed and the advantage is pure noise
// around zero.
func advantageReal(src *rng.PCG, seed *uint64, shards int) float64 {
	const trials = 1000
	correct := 0
	for trial := 0; trial < trials; trial++ {
		isA := src.Bernoulli(0.5)
		var marked int
		for sh := 0; sh < shards; sh++ {
			*seed++
			s := sample.NewL1(0.1, *seed)
			for _, it := range shardStream(isA) {
				s.Process(it)
			}
			// The wire path: shard → snapshot bytes → aggregator restore.
			wireBytes, err := snap.Snapshot(s)
			if err != nil {
				panic(err)
			}
			atAggregator, err := snap.Restore(wireBytes)
			if err != nil {
				panic(err)
			}
			out, ok := atAggregator.Sample()
			if !ok {
				continue
			}
			// The onlooker's statistic: deviation of the marked item's
			// appearance count from its exact expectation.
			if out.Item == 2 {
				marked++
			}
		}
		// Exact expectation of the marked count is shards·(2/10); the
		// onlooker guesses A above the expectation, B below, coin-flip
		// at it — the best rule when A tilts the law up and B down (and
		// a pure guess when, as here, the laws are identical).
		expect := float64(shards) * 0.2
		guessA := float64(marked) > expect ||
			(float64(marked) == expect && src.Bernoulli(0.5))
		if guessA == isA {
			correct++
		}
	}
	return 2*float64(correct)/trials - 1
}

// advantageModel replaces the sampler with the worst-case γ-biased model
// of Definition 1.1: the same statistic, but the sampler leaks item 2
// with probability shifted by +γ under A and −γ under B.
func advantageModel(src *rng.PCG, shards int, gamma float64) float64 {
	const trials = 1000
	base := 0.2 // exact probability of the marked item (2 of 10 records)
	correct := 0
	for trial := 0; trial < trials; trial++ {
		isA := src.Bernoulli(0.5)
		var marked int
		for sh := 0; sh < shards; sh++ {
			p2, p3 := base-gamma, base+gamma
			if isA {
				p2, p3 = base+gamma, base-gamma
			}
			u := src.Float64()
			switch {
			case u < p2:
				marked++
			case u < p2+p3:
				marked--
			}
		}
		guessA := marked > 0 || (marked == 0 && src.Bernoulli(0.5))
		if guessA == isA {
			correct++
		}
	}
	return 2*float64(correct)/trials - 1
}

// mergedGlobalSample demonstrates the other face of γ = 0 composition:
// the aggregator merges the per-shard snapshots into one truly perfect
// GLOBAL sampler (snap.Merge runs the m_j/m shard mixture over the
// decoded pools) and its law over the union database is exact — no
// error accounting across machines. L1's linear measure makes the
// merge exact even though every shard holds the same items.
func mergedGlobalSample() {
	const shards = 8
	const reps = 4000
	h := stats.Histogram{}
	for rep := 0; rep < reps; rep++ {
		snaps := make([][]byte, shards)
		for sh := 0; sh < shards; sh++ {
			s := sample.NewL1(0.1, uint64(rep*shards+sh)+1)
			for _, it := range shardStream(true) {
				s.Process(it)
			}
			data, err := snap.Snapshot(s)
			if err != nil {
				panic(err)
			}
			snaps[sh] = data
		}
		g, err := snap.Merge(uint64(rep)+1, snaps...)
		if err != nil {
			panic(err)
		}
		if out, ok := g.Sample(); ok && !out.Bottom {
			h.Add(out.Item)
		}
	}
	// Exact global law: item frequencies scale by the shard count, so
	// the distribution is the per-shard one — 0.4 / 0.4 / 0.2.
	target := stats.Distribution{0: 0.4, 1: 0.4, 2: 0.2}
	fmt.Println()
	fmt.Printf("merged global sampler over %d shard snapshots (union database):\n", shards)
	fmt.Printf("  %s\n", stats.Summary("merged L1", h, target))
	fmt.Println("  (exact global law from per-shard snapshots: composition is free)")
}
